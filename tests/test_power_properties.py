"""Property-based tests (hypothesis) on power-model invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power import (
    FIFOBufferPower,
    MatrixArbiterPower,
    MatrixCrossbarPower,
    MuxTreeCrossbarPower,
    OnChipLinkPower,
    expected_switches,
    hamming_distance,
)
from repro.tech import Technology

features = st.sampled_from([0.35, 0.25, 0.18, 0.13, 0.10, 0.07])
depths = st.integers(min_value=1, max_value=512)
widths = st.integers(min_value=1, max_value=512)
ports = st.integers(min_value=1, max_value=4)


def tech(feature):
    return Technology(feature)


class TestHamming:
    @given(st.integers(min_value=0, max_value=2**64 - 1),
           st.integers(min_value=0, max_value=2**64 - 1))
    def test_symmetric(self, a, b):
        assert hamming_distance(a, b) == hamming_distance(b, a)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_identity_is_zero(self, a):
        assert hamming_distance(a, a) == 0

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=2**32 - 1))
    def test_triangle_inequality(self, a, b, c):
        assert hamming_distance(a, c) <= (
            hamming_distance(a, b) + hamming_distance(b, c))

    @given(st.integers(min_value=1, max_value=256))
    def test_expected_switches_default_is_half_width(self, width):
        assert expected_switches(width, None, None) == width / 2

    @given(st.integers(min_value=1, max_value=64), st.data())
    def test_expected_switches_bounded_by_width(self, width, data):
        a = data.draw(st.integers(min_value=0, max_value=2**width - 1))
        b = data.draw(st.integers(min_value=0, max_value=2**width - 1))
        assert 0 <= expected_switches(width, a, b) <= width


class TestBufferProperties:
    @settings(max_examples=40)
    @given(features, depths, widths, ports, ports)
    def test_energies_positive_and_finite(self, f, depth, width, pr, pw):
        buf = FIFOBufferPower(tech(f), depth_flits=depth, flit_bits=width,
                              read_ports=pr, write_ports=pw)
        for energy in (buf.read_energy(), buf.write_energy()):
            assert energy > 0
            assert math.isfinite(energy)

    @settings(max_examples=30)
    @given(features, depths, widths)
    def test_read_energy_monotone_in_width(self, f, depth, width):
        t = tech(f)
        narrow = FIFOBufferPower(t, depth_flits=depth, flit_bits=width)
        wide = FIFOBufferPower(t, depth_flits=depth, flit_bits=width + 8)
        assert wide.read_energy() > narrow.read_energy()

    @settings(max_examples=30)
    @given(features, depths, widths)
    def test_read_energy_monotone_in_depth(self, f, depth, width):
        t = tech(f)
        shallow = FIFOBufferPower(t, depth_flits=depth, flit_bits=width)
        deep = FIFOBufferPower(t, depth_flits=depth + 8, flit_bits=width)
        assert deep.read_energy() > shallow.read_energy()

    @settings(max_examples=30)
    @given(features, depths, widths, ports)
    def test_more_ports_longer_lines(self, f, depth, width, p):
        t = tech(f)
        few = FIFOBufferPower(t, depth_flits=depth, flit_bits=width,
                              read_ports=p, write_ports=p)
        more = FIFOBufferPower(t, depth_flits=depth, flit_bits=width,
                               read_ports=p + 1, write_ports=p + 1)
        assert more.wordline_length_um > few.wordline_length_um
        assert more.bitline_length_um > few.bitline_length_um

    @settings(max_examples=30)
    @given(st.integers(min_value=2, max_value=64), st.data())
    def test_write_energy_bounded_by_full_flip(self, width, data):
        buf = FIFOBufferPower(tech(0.1), depth_flits=8, flit_bits=width)
        a = data.draw(st.integers(min_value=0, max_value=2**width - 1))
        b = data.draw(st.integers(min_value=0, max_value=2**width - 1))
        tracked = buf.write_energy(a, b)
        full = buf.write_energy(0, 2**width - 1)
        floor = buf.write_energy(a, a)
        assert floor <= tracked <= full


class TestCrossbarProperties:
    @settings(max_examples=40)
    @given(features, st.integers(2, 12), st.integers(2, 12),
           st.integers(1, 512))
    def test_matrix_energies_positive(self, f, i, o, w):
        xb = MatrixCrossbarPower(tech(f), inputs=i, outputs=o, width_bits=w)
        assert xb.traversal_energy() > 0
        assert xb.control_line_energy > 0

    @settings(max_examples=30)
    @given(features, st.integers(2, 12), st.integers(1, 256))
    def test_matrix_monotone_in_radix(self, f, radix, w):
        t = tech(f)
        small = MatrixCrossbarPower(t, inputs=radix, outputs=radix,
                                    width_bits=w)
        big = MatrixCrossbarPower(t, inputs=radix + 1, outputs=radix + 1,
                                  width_bits=w)
        assert big.traversal_energy() > small.traversal_energy()

    @settings(max_examples=30)
    @given(features, st.integers(2, 32), st.integers(1, 128))
    def test_mux_tree_never_beats_matrix_radix_growth(self, f, i, w):
        """Mux-tree traversal grows logarithmically with inputs, matrix
        linearly — the tree is never the more expensive of the two at
        large radix and equal width."""
        t = tech(f)
        mt = MuxTreeCrossbarPower(t, inputs=i, outputs=i, width_bits=w)
        mx = MatrixCrossbarPower(t, inputs=i, outputs=i, width_bits=w)
        assert mt.traversal_energy() <= mx.traversal_energy() * 1.5


class TestArbiterProperties:
    @settings(max_examples=40)
    @given(features, st.integers(1, 32), st.data())
    def test_energy_monotone_in_requests(self, f, r, data):
        arb = MatrixArbiterPower(tech(f), requesters=r)
        n = data.draw(st.integers(min_value=0, max_value=r - 1))
        assert arb.arbitration_energy(n + 1) >= arb.arbitration_energy(n)

    @settings(max_examples=40)
    @given(features, st.integers(1, 32))
    def test_energy_nonnegative(self, f, r):
        arb = MatrixArbiterPower(tech(f), requesters=r)
        for n in range(r + 1):
            assert arb.arbitration_energy(n) >= 0.0


class TestLinkProperties:
    @settings(max_examples=40)
    @given(features, st.floats(min_value=0.5, max_value=20.0),
           st.integers(1, 512))
    def test_on_chip_energy_scales_with_length_and_width(self, f, mm, w):
        t = tech(f)
        link = OnChipLinkPower(t, length_mm=mm, width_bits=w)
        double = OnChipLinkPower(t, length_mm=2 * mm, width_bits=w)
        assert double.traversal_energy() > link.traversal_energy()
        assert link.traversal_energy() > 0
