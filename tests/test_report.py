"""Unit tests for result reporting."""

import pytest

from repro.core.report import (
    SweepPoint,
    SweepResult,
    breakdown_table,
    comparison_table,
    format_power,
    spatial_table,
)
from repro.sim.engine import Simulation
from repro.sim.traffic import UniformRandomTraffic
from repro.sim.topology import Torus

from tests.conftest import small_config


def quick_result():
    cfg = small_config("wormhole")
    traffic = UniformRandomTraffic(Torus(4), 0.02, seed=5)
    return Simulation(cfg, traffic, warmup_cycles=80,
                      sample_packets=30).run()


def point(rate, latency, power=1.0):
    return SweepPoint(rate=rate, avg_latency=latency, total_power_w=power,
                      throughput_flits_per_cycle=rate * 16 * 3,
                      breakdown_w={})


class TestFormatting:
    def test_format_power_prefixes(self):
        assert format_power(2.5) == "2.500 W"
        assert format_power(0.0025) == "2.500 mW"
        assert format_power(2.5e-6) == "2.500 uW"
        assert format_power(2.5e-9) == "2.500 nW"

    def test_format_power_rejects_negative(self):
        with pytest.raises(ValueError):
            format_power(-1.0)


class TestTables:
    def test_breakdown_table_lists_components_and_total(self):
        table = breakdown_table(quick_result())
        for name in ("input_buffer", "crossbar", "arbiter", "link",
                     "total"):
            assert name in table

    def test_spatial_table_has_grid_shape(self):
        table = spatial_table(quick_result())
        lines = table.splitlines()
        assert len(lines) == 5  # 4 rows + x-axis labels
        assert lines[0].startswith("y=3")
        assert "x=0" in lines[-1]

    def test_comparison_table_aligns_rates(self):
        a = SweepResult("A", [point(0.01, 10.0), point(0.02, 12.0)])
        b = SweepResult("B", [point(0.02, 14.0)])
        table = comparison_table([a, b])
        assert "A" in table and "B" in table
        lines = table.splitlines()
        assert len(lines) == 3  # header + two rates
        assert "-" in lines[1]  # B missing at rate 0.01

    def test_comparison_table_rejects_empty(self):
        with pytest.raises(ValueError):
            comparison_table([])


class TestSweepResult:
    def test_zero_load_is_lowest_rate_point(self):
        sweep = SweepResult("X", [point(0.05, 30.0), point(0.01, 10.0)])
        assert sweep.zero_load_latency == 10.0

    def test_saturation_rate_uses_paper_criterion(self):
        sweep = SweepResult("X", [
            point(0.01, 10.0), point(0.05, 15.0), point(0.10, 21.0),
            point(0.15, 90.0)])
        assert sweep.saturation_rate() == 0.10

    def test_unsaturated_sweep(self):
        sweep = SweepResult("X", [point(0.01, 10.0), point(0.02, 11.0)])
        assert sweep.saturation_rate() is None

    def test_table_renders_all_points(self):
        sweep = SweepResult("X", [point(0.01, 10.0), point(0.02, 11.0)])
        text = sweep.table()
        assert "0.010" in text and "0.020" in text
        assert "saturation" in text

    def test_empty_sweep_zero_load_raises(self):
        with pytest.raises(ValueError):
            SweepResult("X").zero_load_latency
