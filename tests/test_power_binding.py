"""Unit tests for the event-to-energy binding."""

import pytest

from repro.core import events as ev
from repro.core.events import EnergyAccountant
from repro.core.config import LinkConfig
from repro.core.power_binding import NullBinding, PowerBinding

from tests.conftest import small_config


def binding(kind="wormhole", **kwargs):
    cfg = small_config(kind, **kwargs) if "activity_mode" not in kwargs \
        else small_config(kind).with_(activity_mode=kwargs["activity_mode"])
    acc = EnergyAccountant(cfg.num_nodes)
    return PowerBinding(cfg, acc), acc


class TestAverageMode:
    def test_buffer_write_deposits_constant_energy(self):
        b, acc = binding()
        b.buffer_write(3, 0, None)
        b.buffer_write(3, 1, None)
        expected = 2 * b.buffer_model.write_energy()
        assert acc.component_energy(ev.INPUT_BUFFER) == pytest.approx(expected)
        assert acc.event_count(ev.BUFFER_WRITE, node=3) == 2

    def test_buffer_read_energy(self):
        b, acc = binding()
        b.buffer_read(0)
        assert acc.component_energy(ev.INPUT_BUFFER) == pytest.approx(
            b.buffer_model.read_energy())

    def test_xbar_traversal(self):
        b, acc = binding()
        b.xbar_traversal(0, 2, None)
        assert acc.component_energy(ev.CROSSBAR) == pytest.approx(
            b.crossbar_model.traversal_energy())

    def test_arbitration_kinds_use_their_tables(self):
        b, acc = binding("vc")
        b.arbitration(0, "switch", 3)
        switch = acc.component_energy(ev.ARBITER)
        assert switch == pytest.approx(
            b.switch_arbiter_model.arbitration_energy(3))
        b.arbitration(0, "vc", 2)
        b.arbitration(0, "local", 1)
        assert acc.event_count(ev.ARBITRATION) == 3

    def test_switch_arbitration_includes_crossbar_control(self):
        b, _ = binding()
        with_ctrl = b.switch_arbiter_model.arbitration_energy(2)
        without = b.vc_arbiter_model.arbitration_energy(2)
        assert b.switch_arbiter_model.xbar_control_energy > 0
        assert b.vc_arbiter_model.xbar_control_energy == 0

    def test_unknown_arbitration_kind(self):
        b, _ = binding()
        with pytest.raises(ValueError):
            b.arbitration(0, "psychic", 1)

    def test_link_traversal_on_chip(self):
        b, acc = binding()
        b.link_traversal(0, 1, None)
        assert acc.component_energy(ev.LINK) == pytest.approx(
            b.link_model.traversal_energy())

    def test_cb_events_only_for_central(self):
        b, acc = binding("central")
        b.cb_write(0, None)
        b.cb_read(0, None)
        expected = b.central_model.write_energy() + \
            b.central_model.read_energy()
        assert acc.component_energy(ev.CENTRAL_BUFFER) == pytest.approx(
            expected)

    def test_non_central_config_has_no_cb_model(self):
        b, _ = binding("wormhole")
        assert b.central_model is None


class TestDataMode:
    def test_buffer_write_uses_hamming_history(self):
        b, acc = binding(activity_mode="data")
        assert b.data_mode
        b.buffer_write(0, 0, 0b1111)
        first = acc.component_energy(ev.INPUT_BUFFER)
        b.buffer_write(0, 0, 0b1111)  # identical payload: wordline only
        second = acc.component_energy(ev.INPUT_BUFFER) - first
        assert second < first
        assert second == pytest.approx(b.buffer_model.write_energy(1, 1))

    def test_histories_are_per_port(self):
        b, acc = binding(activity_mode="data")
        b.buffer_write(0, 0, 0xFF)
        before = acc.component_energy(ev.INPUT_BUFFER)
        # Different port: no history, falls back to its own first write.
        b.buffer_write(0, 1, 0xFF)
        after = acc.component_energy(ev.INPUT_BUFFER)
        b.buffer_write(0, 0, 0xFF)  # same port, same data: cheap
        cheap = acc.component_energy(ev.INPUT_BUFFER) - after
        assert cheap < after - before

    def test_link_payload_tracking(self):
        b, acc = binding(activity_mode="data")
        b.link_traversal(0, 1, 0b1010)
        first = acc.component_energy(ev.LINK)
        b.link_traversal(0, 1, 0b1010)
        assert acc.component_energy(ev.LINK) == pytest.approx(first)


class TestFinalize:
    def test_on_chip_finalize_adds_nothing(self):
        b, acc = binding()
        b.finalize(1000, [4] * 16)
        assert acc.total_energy() == 0.0

    def test_chip_to_chip_finalize_charges_constant_link_power(self):
        cfg = small_config("wormhole").with_(
            link=LinkConfig(kind="chip_to_chip", power_watts=3.0))
        acc = EnergyAccountant(cfg.num_nodes)
        b = PowerBinding(cfg, acc)
        cycles = 1000
        b.finalize(cycles, [4] * 16)
        per_node = 4 * 3.0 / cfg.tech.frequency_hz * cycles
        assert acc.node_energy(0)[ev.LINK] == pytest.approx(per_node)
        assert acc.total_energy() == pytest.approx(16 * per_node)

    def test_finalize_rejects_negative_cycles(self):
        b, _ = binding()
        with pytest.raises(ValueError):
            b.finalize(-1, [4] * 16)


class TestNullBinding:
    def test_all_methods_are_noops(self):
        nb = NullBinding()
        nb.buffer_write(0, 0, None)
        nb.buffer_read(0)
        nb.xbar_traversal(0, 0, None)
        nb.arbitration(0, "switch", 1)
        nb.link_traversal(0, 0, None)
        nb.cb_write(0, None)
        nb.cb_read(0, None)
        nb.finalize(100, [4])
