"""Integration-level tests of network assembly and flit transport."""

import pytest

from repro.sim.network import Network
from repro.sim.topology import LOCAL, Torus

from tests.conftest import small_config

KINDS = ["wormhole", "vc", "central"]


def run_cycles(network, n):
    for _ in range(n):
        network.step()


class TestAssembly:
    @pytest.mark.parametrize("kind", KINDS)
    def test_router_count_and_wiring(self, kind):
        net = Network(small_config(kind))
        assert len(net.routers) == 16
        for router in net.routers:
            # 4 inter-router links in, 4 out, LOCAL unwired.
            assert sum(c is not None for c in router.in_channels) == 4
            assert sum(c is not None for c in router.out_channels) == 4
            assert router.in_channels[LOCAL] is None
            assert router.out_channels[LOCAL] is None

    @pytest.mark.parametrize("kind", KINDS)
    def test_links_per_node(self, kind):
        net = Network(small_config(kind))
        assert net.links_per_node() == [4] * 16

    def test_mesh_edge_nodes_have_fewer_links(self):
        cfg = small_config("wormhole").with_(topology="mesh")
        net = Network(cfg)
        corner = net.topo.node_at(0, 0)
        assert net.routers[corner].out_degree == 2


class TestDelivery:
    @pytest.mark.parametrize("kind", KINDS)
    def test_single_packet_delivered(self, kind):
        net = Network(small_config(kind))
        packet = net.create_packet(src=0, dst=5, cycle=0)
        run_cycles(net, 100)
        assert packet.eject_cycle is not None
        assert net.packets_delivered == 1
        assert net.flits_ejected == net.config.packet_length_flits

    @pytest.mark.parametrize("kind", KINDS)
    def test_all_pairs_delivered(self, kind):
        net = Network(small_config(kind))
        packets = []
        for dst in range(1, 16):
            packets.append(net.create_packet(src=0, dst=dst, cycle=0))
        run_cycles(net, 600)
        assert all(p.eject_cycle is not None for p in packets)

    @pytest.mark.parametrize("kind", KINDS)
    def test_flit_conservation_throughout(self, kind):
        net = Network(small_config(kind))
        for i in range(20):
            net.create_packet(src=i % 16, dst=(i * 7 + 1) % 16 if
                              (i * 7 + 1) % 16 != i % 16 else (i + 1) % 16,
                              cycle=0)
        for _ in range(200):
            net.step()
            net.audit()

    @pytest.mark.parametrize("kind", KINDS)
    def test_in_order_delivery_per_flow(self, kind):
        """Packets between the same (src, dst) pair arrive in creation
        order — wormhole networks must not reorder a flow."""
        net = Network(small_config(kind))
        order = []
        net.on_packet_delivered = lambda p: order.append(p.packet_id)
        for _ in range(10):
            net.create_packet(src=2, dst=9, cycle=net.cycle)
        run_cycles(net, 400)
        assert order == sorted(order)
        assert len(order) == 10

    @pytest.mark.parametrize("kind", KINDS)
    def test_ejection_at_wrong_node_caught(self, kind):
        """The sink validates destinations (guards routing bugs)."""
        net = Network(small_config(kind))
        packet = net.create_packet(src=0, dst=5, cycle=0)
        packet.route[-2:] = [LOCAL]  # corrupt: eject one hop early
        with pytest.raises(RuntimeError):
            run_cycles(net, 100)


class TestInjection:
    @pytest.mark.parametrize("kind", KINDS)
    def test_injection_is_one_flit_per_cycle(self, kind):
        net = Network(small_config(kind))
        for _ in range(4):
            net.create_packet(src=0, dst=5, cycle=0)
        before = net.flits_injected
        net.step()
        assert net.flits_injected - before <= 1

    def test_source_queue_holds_overflow(self):
        cfg = small_config("wormhole", buffer_depth=2)
        net = Network(cfg)
        for _ in range(10):
            net.create_packet(src=0, dst=5, cycle=0)
        assert net.flits_awaiting_injection == 10 * 3
        run_cycles(net, 3)
        # Injection drains the queue gradually, never overflowing.
        assert net.flits_awaiting_injection >= 10 * 3 - 3


class TestPayloads:
    def test_payloads_generated_in_data_mode(self):
        cfg = small_config("wormhole").with_(activity_mode="data")
        net = Network(cfg)
        net.create_packet(src=0, dst=5, cycle=0)
        flits = list(net.source_queues[0])
        assert all(f.payload is not None for f in flits)
        assert all(0 <= f.payload < 2 ** cfg.router.flit_bits
                   for f in flits)

    def test_no_payloads_in_average_mode(self):
        net = Network(small_config("wormhole"))
        net.create_packet(src=0, dst=5, cycle=0)
        assert all(f.payload is None for f in net.source_queues[0])
