"""Ballpark-validation tests (paper section 3.2).

The paper reports its estimates for two commercial routers were "within
ballpark" of designers' guesstimates; precise numbers were proprietary.
These tests pin our models inside the same publicly quoted envelopes:
the estimate must land within a small factor of the published figures
(the models cover the dynamic datapath only — no clock tree or control
logic — so sitting below the full published budget is expected).
"""

import pytest

from repro.validation import (
    Alpha21364Router,
    InfiniBand12XSwitch,
    validation_report,
)


class TestAlpha21364:
    def test_total_power_within_published_envelope(self):
        """Published: router + links = 25 W.  Datapath-only estimate
        must land within [25/5, 25*2] W."""
        estimate = Alpha21364Router().estimate()
        assert 5.0 <= estimate.total_power_w <= 50.0

    def test_router_dominated_by_buffers_and_crossbar(self):
        model = Alpha21364Router()
        arb = model.arbiter.arbitration_energy(2)
        assert arb < 0.01 * model.flit_energy()

    def test_power_scales_with_utilization(self):
        low = Alpha21364Router(utilization=0.1).estimate()
        high = Alpha21364Router(utilization=0.9).estimate()
        assert high.router_power_w > 5 * low.router_power_w
        # Links are budgeted constant.
        assert high.link_power_w == low.link_power_w

    def test_utilization_validated(self):
        with pytest.raises(ValueError):
            Alpha21364Router(utilization=0.0)
        with pytest.raises(ValueError):
            Alpha21364Router(utilization=1.5)


class TestInfiniBand:
    def test_link_power_matches_datasheet(self):
        """Eight 12X links at the paper's 3 W figure."""
        estimate = InfiniBand12XSwitch().estimate()
        assert estimate.link_power_w == 24.0

    def test_total_power_within_published_envelope(self):
        """Links alone are 24 W; the switch was quoted at ~15 W in a
        blade budget (excluding link PHYs).  Total must land in
        [25, 60] W."""
        estimate = InfiniBand12XSwitch().estimate()
        assert 25.0 <= estimate.total_power_w <= 60.0

    def test_central_buffer_dominates_core(self):
        model = InfiniBand12XSwitch()
        cb = model.central.write_energy() + model.central.read_energy()
        assert cb > 0.5 * model.chunk_energy()

    def test_utilization_validated(self):
        with pytest.raises(ValueError):
            InfiniBand12XSwitch(utilization=-0.1)


class TestReport:
    def test_report_names_both_routers(self):
        report = validation_report()
        assert "Alpha 21364" in report
        assert "InfiniBand" in report
        assert "25 W" in report
