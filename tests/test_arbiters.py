"""Unit tests for the functional arbiters."""

import pytest

from repro.sim.arbiters import (
    MatrixArbiter,
    QueuingArbiter,
    RoundRobinArbiter,
    make_arbiter,
)

ALL = [MatrixArbiter, RoundRobinArbiter, QueuingArbiter]


class TestCommon:
    @pytest.mark.parametrize("cls", ALL)
    def test_no_requests_no_grant(self, cls):
        assert cls(4).grant([]) is None

    @pytest.mark.parametrize("cls", ALL)
    def test_single_request_wins(self, cls):
        assert cls(4).grant([2]) == 2

    @pytest.mark.parametrize("cls", ALL)
    def test_winner_among_requesters(self, cls):
        arb = cls(8)
        for _ in range(50):
            winner = arb.grant([1, 3, 5])
            assert winner in (1, 3, 5)

    @pytest.mark.parametrize("cls", ALL)
    def test_rejects_out_of_range(self, cls):
        with pytest.raises(ValueError):
            cls(4).grant([4])
        with pytest.raises(ValueError):
            cls(4).grant([-1])

    @pytest.mark.parametrize("cls", ALL)
    def test_rejects_zero_size(self, cls):
        with pytest.raises(ValueError):
            cls(0)

    @pytest.mark.parametrize("cls", ALL)
    def test_long_run_fairness(self, cls):
        """Under persistent contention every requester gets served —
        within 2x of its fair share over a long run."""
        arb = cls(4)
        wins = {i: 0 for i in range(4)}
        rounds = 400
        for _ in range(rounds):
            wins[arb.grant([0, 1, 2, 3])] += 1
        for i in range(4):
            assert wins[i] >= rounds / 8


class TestMatrix:
    def test_least_recently_served(self):
        arb = MatrixArbiter(3)
        first = arb.grant([0, 1, 2])
        second = arb.grant([0, 1, 2])
        third = arb.grant([0, 1, 2])
        assert {first, second, third} == {0, 1, 2}
        # The cycle repeats: the earliest winner is due again.
        assert arb.grant([0, 1, 2]) == first

    def test_recent_winner_loses_ties(self):
        arb = MatrixArbiter(2)
        w = arb.grant([0, 1])
        other = 1 - w
        assert arb.grant([0, 1]) == other


class TestRoundRobin:
    def test_pointer_rotates(self):
        arb = RoundRobinArbiter(4)
        order = [arb.grant([0, 1, 2, 3]) for _ in range(8)]
        assert order == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_skips_idle_requesters(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([2]) == 2
        assert arb.grant([0, 1]) == 0  # pointer moved past 2 -> 3 -> 0


class TestQueuing:
    def test_fcfs_order(self):
        arb = QueuingArbiter(4)
        assert arb.grant([2]) == 2         # 2 arrives and wins
        assert arb.grant([0, 3]) in (0, 3)  # 0 and 3 arrive together

    def test_earlier_arrival_wins(self):
        arb = QueuingArbiter(4)
        arb.grant([1, 2])  # both queued; one granted
        # Requester 3 arrives later than the leftover one.
        leftover = {1, 2} - {arb.grant([1, 2, 3])}
        assert 3 in leftover or leftover <= {1, 2}

    def test_withdrawn_requests_dropped(self):
        arb = QueuingArbiter(4)
        arb.grant([1, 2])     # queue: the loser of {1, 2}
        winner = arb.grant([3])  # 1/2 withdrew; 3 must win
        assert winner == 3

    def test_requeue_after_withdrawal(self):
        arb = QueuingArbiter(4)
        first = arb.grant([1, 2])
        arb.grant([3])  # the {1,2} loser withdrew
        assert arb.grant([1]) == 1  # may rejoin later


class TestFactory:
    def test_make_by_name(self):
        assert isinstance(make_arbiter("matrix", 4), MatrixArbiter)
        assert isinstance(make_arbiter("round_robin", 4), RoundRobinArbiter)
        assert isinstance(make_arbiter("queuing", 4), QueuingArbiter)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_arbiter("oracle", 4)
