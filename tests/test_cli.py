"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestPresets:
    def test_lists_all_presets(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        for name in ("WH64", "VC16", "VC64", "VC128", "CB", "XB"):
            assert name in out


class TestRun:
    def test_run_prints_summary(self, capsys):
        code = main(["run", "--preset", "VC16", "--rate", "0.03",
                     "--sample", "60", "--warmup", "100"])
        assert code == 0
        out = capsys.readouterr().out
        assert "avg latency" in out
        assert "total power" in out
        assert "crossbar" in out

    def test_run_spatial_map(self, capsys):
        code = main(["run", "--preset", "VC16", "--rate", "0.03",
                     "--sample", "60", "--warmup", "100", "--spatial"])
        assert code == 0
        assert "y=3" in capsys.readouterr().out

    def test_run_broadcast(self, capsys):
        code = main(["run", "--preset", "VC16", "--traffic", "broadcast",
                     "--source", "9", "--rate", "0.1",
                     "--sample", "60", "--warmup", "100"])
        assert code == 0
        assert "broadcast" in capsys.readouterr().out

    def test_run_with_leakage(self, capsys):
        code = main(["run", "--preset", "VC16", "--rate", "0.03",
                     "--sample", "60", "--warmup", "100", "--leakage"])
        assert code == 0

    def test_run_monitor(self, capsys):
        code = main(["run", "--preset", "VC16", "--rate", "0.03",
                     "--sample", "60", "--warmup", "100", "--monitor"])
        assert code == 0
        assert "occupancy/utilization" in capsys.readouterr().out

    def test_run_data_activity(self, capsys):
        code = main(["run", "--preset", "VC16", "--rate", "0.03",
                     "--sample", "40", "--warmup", "80",
                     "--activity", "data"])
        assert code == 0

    @pytest.mark.parametrize("traffic", ["transpose", "bitcomp",
                                         "hotspot", "neighbor"])
    def test_other_traffic_kinds(self, capsys, traffic):
        code = main(["run", "--preset", "VC16", "--traffic", traffic,
                     "--rate", "0.03", "--sample", "40",
                     "--warmup", "80"])
        assert code == 0


class TestSweep:
    def test_sweep_prints_table(self, capsys):
        code = main(["sweep", "--preset", "VC16",
                     "--rates", "0.02,0.05", "--sample", "60",
                     "--warmup", "100"])
        assert code == 0
        out = capsys.readouterr().out
        assert "0.020" in out and "0.050" in out
        assert "saturation" in out

    def test_sweep_any_traffic_kind(self, capsys):
        code = main(["sweep", "--preset", "VC16", "--traffic", "hotspot",
                     "--source", "5", "--rates", "0.02,0.04",
                     "--sample", "50", "--warmup", "80"])
        assert code == 0
        assert "0.040" in capsys.readouterr().out

    def test_sweep_parallel(self, capsys):
        code = main(["sweep", "--preset", "VC16",
                     "--rates", "0.02,0.05", "--sample", "60",
                     "--warmup", "100", "--processes", "2"])
        assert code == 0
        assert "saturation" in capsys.readouterr().out


class TestExperiment:
    ARGS = ["experiment", "--presets", "WH64,VC16",
            "--traffic", "uniform", "--rates", "0.02,0.05",
            "--sample", "50", "--warmup", "80"]

    def test_grid_runs_and_reports(self, tmp_path, capsys):
        code = main(self.ARGS + ["--cache-dir", str(tmp_path / "c")])
        assert code == 0
        out = capsys.readouterr().out
        assert "WH64" in out and "VC16" in out
        assert "4 points" in out
        assert "4 simulated" in out
        assert "cache:" in out

    def test_second_run_served_from_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "c")
        main(self.ARGS + ["--cache-dir", cache])
        capsys.readouterr()
        assert main(self.ARGS + ["--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "0 simulated" in out and "4 cached" in out
        assert out.count("cached") >= 4  # every progress line

    def test_no_cache_flag(self, capsys):
        code = main(self.ARGS + ["--no-cache"])
        assert code == 0
        assert "cache:" not in capsys.readouterr().out

    def test_csv_export(self, tmp_path, capsys):
        csv_path = tmp_path / "exp.csv"
        code = main(self.ARGS + ["--no-cache", "--csv", str(csv_path)])
        assert code == 0
        lines = csv_path.read_text().splitlines()
        assert len(lines) == 5  # header + 2 presets x 2 rates

    def test_cache_line_reports_hits_and_misses(self, tmp_path, capsys):
        cache = str(tmp_path / "c")
        assert main(self.ARGS + ["--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "0 hits / 4 misses this run" in out
        assert main(self.ARGS + ["--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "4 hits / 0 misses this run" in out

    def test_rates_auto_builds_guided_grid(self, tmp_path, capsys):
        code = main(["experiment", "--presets", "VC16",
                     "--traffic", "uniform", "--rates", "auto",
                     "--grid-points", "4", "--sample", "40",
                     "--warmup", "80", "--cache-dir", str(tmp_path / "c")])
        assert code == 0
        out = capsys.readouterr().out
        assert "guided grid VC16/uniform" in out
        assert "predicted saturation" in out
        assert "4 points" in out and "0 failed" in out

    def test_multi_traffic_and_seeds(self, tmp_path, capsys):
        code = main(["experiment", "--presets", "VC16",
                     "--traffic", "uniform,transpose",
                     "--rates", "0.02", "--seeds", "1,2",
                     "--sample", "40", "--warmup", "80",
                     "--cache-dir", str(tmp_path / "c")])
        assert code == 0
        out = capsys.readouterr().out
        assert "transpose" in out and "seed=2" in out


class TestEstimate:
    def test_estimate_prints_analytic_point(self, capsys):
        code = main(["estimate", "--preset", "VC16", "--rate", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "analytic estimate, no simulation" in out
        assert "zero-load" in out
        assert "saturation" in out
        assert "power breakdown" in out
        assert "crossbar" in out

    def test_estimate_topology_overrides(self, capsys):
        code = main(["estimate", "--preset", "VC16", "--rate", "0.02",
                     "--topology", "mesh", "--width", "8",
                     "--height", "8"])
        assert code == 0
        assert "mesh 8x8" in capsys.readouterr().out

    def test_estimate_warns_past_saturation(self, capsys):
        code = main(["estimate", "--preset", "VC16", "--rate", "0.5"])
        assert code == 0
        assert "past the predicted" in capsys.readouterr().out

    def test_estimate_other_traffic(self, capsys):
        code = main(["estimate", "--preset", "WH64",
                     "--traffic", "transpose", "--rate", "0.04"])
        assert code == 0
        assert "transpose" in capsys.readouterr().out


class TestPower:
    def test_power_walkthrough(self, capsys):
        assert main(["power", "--preset", "WH64"]) == 0
        out = capsys.readouterr().out
        for term in ("E_wrt", "E_arb", "E_read", "E_xb", "E_link",
                     "E_flit"):
            assert term in out

    def test_power_cb_shows_central_model(self, capsys):
        assert main(["power", "--preset", "CB"]) == 0
        assert "central buffer" in capsys.readouterr().out


class TestDelay:
    def test_delay_report(self, capsys):
        assert main(["delay", "--preset", "VC64"]) == 0
        out = capsys.readouterr().out
        assert "3-stage" in out
        assert "GHz" in out


class TestErrors:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["teleport"])

    def test_unknown_preset_exits_nonzero(self, capsys):
        assert main(["delay", "--preset", "VC9000"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_zero_processes_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["experiment", "--processes", "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_bad_point_timeout_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["experiment", "--point-timeout", "0"])
        assert excinfo.value.code == 2
        assert "must be > 0" in capsys.readouterr().err

    def test_zero_queue_limit_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--queue-limit", "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_zero_sample_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--sample", "0"])
        assert excinfo.value.code == 2


class TestExportFlags:
    def test_run_json_and_csv(self, tmp_path, capsys):
        json_path = tmp_path / "r.json"
        csv_path = tmp_path / "r.csv"
        code = main(["run", "--preset", "VC16", "--rate", "0.03",
                     "--sample", "50", "--warmup", "80",
                     "--json", str(json_path), "--csv", str(csv_path)])
        assert code == 0
        assert json_path.exists() and csv_path.exists()
        assert "node,x,y,power_w" in csv_path.read_text().splitlines()[0]

    def test_sweep_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "s.csv"
        code = main(["sweep", "--preset", "VC16",
                     "--rates", "0.02,0.04", "--sample", "50",
                     "--warmup", "80", "--csv", str(csv_path)])
        assert code == 0
        lines = csv_path.read_text().splitlines()
        assert len(lines) == 3  # header + two rates


class TestValidate:
    def test_validate_prints_both_routers(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "Alpha 21364" in out
        assert "InfiniBand" in out
