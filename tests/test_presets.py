"""Unit tests for the paper's named configurations."""

import pytest

from repro.core.presets import PRESETS, preset


class TestOnChipPresets:
    def test_wh64(self):
        cfg = preset("WH64")
        assert cfg.router.kind == "wormhole"
        assert cfg.router.buffer_depth == 64
        assert cfg.router.flit_bits == 256
        assert cfg.tech.frequency_hz == 2.0e9
        assert cfg.tech.vdd == 1.2
        assert cfg.tech.feature_size_um == 0.1
        assert cfg.link.kind == "on_chip"
        assert cfg.link.length_mm == 3.0

    def test_vc16(self):
        cfg = preset("VC16")
        assert cfg.router.kind == "vc"
        assert cfg.router.num_vcs == 2
        assert cfg.router.buffer_depth == 8
        assert cfg.router.buffer_flits_per_port == 16

    def test_vc64(self):
        cfg = preset("VC64")
        assert cfg.router.num_vcs == 8
        assert cfg.router.buffer_flits_per_port == 64

    def test_vc128(self):
        cfg = preset("VC128")
        assert cfg.router.num_vcs == 8
        assert cfg.router.buffer_depth == 16
        assert cfg.router.buffer_flits_per_port == 128

    def test_vc64_matches_wh64_buffering(self):
        """The section 4.2 pairing: same total buffer per port."""
        assert preset("VC64").router.buffer_flits_per_port == \
            preset("WH64").router.buffer_flits_per_port


class TestChipToChipPresets:
    def test_cb(self):
        cfg = preset("CB")
        assert cfg.router.kind == "central"
        assert cfg.router.cb_rows == 2560
        assert cfg.router.cb_banks == 4
        assert cfg.router.cb_read_ports == 2
        assert cfg.router.cb_write_ports == 2
        assert cfg.router.buffer_depth == 64
        assert cfg.router.flit_bits == 32
        assert cfg.tech.frequency_hz == 1.0e9
        assert cfg.link.kind == "chip_to_chip"
        assert cfg.link.power_watts == 3.0

    def test_xb(self):
        cfg = preset("XB")
        assert cfg.router.kind == "vc"
        assert cfg.router.num_vcs == 16
        assert cfg.router.buffer_depth == 268


class TestCommon:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_all_presets_are_4x4_torus_with_5_flit_packets(self, name):
        cfg = preset(name)
        assert cfg.topology == "torus"
        assert (cfg.width, cfg.height) == (4, 4)
        assert cfg.packet_length_flits == 5

    def test_lookup_case_insensitive(self):
        assert preset("vc16") == preset("VC16")

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            preset("VC999")
