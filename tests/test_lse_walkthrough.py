"""The section 3.3 walkthrough, executed on the component framework."""

import pytest

from repro import Orion
from repro.core import events as ev
from repro.core.presets import walkthrough_router
from repro.lse import Message, PowerHooks, build_walkthrough_router
from repro.power import (
    FIFOBufferPower,
    MatrixArbiterPower,
    MatrixCrossbarPower,
    OnChipLinkPower,
)
from repro.tech import Technology


def assembled_system(payload=0x5A5A5A5A):
    system = build_walkthrough_router(
        [(0, Message(payload=payload, out_port=0))])
    system.bus.record = True
    return system


def hooks_for(system):
    tech = Technology(0.1, vdd=1.2, frequency_hz=2e9)
    xbar = MatrixCrossbarPower(tech, 5, 5, 32)
    return PowerHooks(
        system.bus,
        buffer_model=FIFOBufferPower(tech, depth_flits=4, flit_bits=32),
        arbiter_model=MatrixArbiterPower(
            tech, requesters=4,
            xbar_control_energy=xbar.control_line_energy),
        crossbar_model=xbar,
        link_model=OnChipLinkPower(tech, length_mm=3.0, width_bits=32),
    )


class TestWalkthrough:
    def test_event_sequence_matches_section_3_3(self):
        """Write -> arbitration -> read -> crossbar -> link, in order."""
        system = assembled_system()
        system.run(6)
        names = [name for _, name, _ in system.bus.log]
        assert names == [
            ev.BUFFER_WRITE,
            ev.ARBITRATION,
            ev.BUFFER_READ,
            ev.XBAR_TRAVERSAL,
            ev.LINK_TRAVERSAL,
        ]

    def test_flit_reaches_the_sink(self):
        system = assembled_system(payload=123)
        system.run(6)
        received = system.module("Sink").received
        assert len(received) == 1
        assert received[0][1].payload == 123

    def test_energy_matches_the_analytic_walkthrough(self):
        """E_flit from the module assembly equals the facade's
        closed-form E_wrt + E_arb + E_read + E_xb + E_link."""
        system = assembled_system()
        hooks = hooks_for(system)
        system.run(6)
        expected = Orion(walkthrough_router()).flit_energy_walkthrough()
        assert hooks.total_energy == pytest.approx(expected["E_flit"])
        assert hooks.energy_by_event[ev.BUFFER_WRITE] == pytest.approx(
            expected["E_wrt"])
        assert hooks.energy_by_event[ev.ARBITRATION] == pytest.approx(
            expected["E_arb"])
        assert hooks.energy_by_event[ev.LINK_TRAVERSAL] == pytest.approx(
            expected["E_link"])

    def test_multi_flit_packet_accumulates_linearly(self):
        schedule = [(i, Message(payload=i, out_port=0)) for i in range(5)]
        system = build_walkthrough_router(schedule)
        hooks = hooks_for(system)
        system.run(15)
        assert len(system.module("Sink").received) == 5
        single = Orion(walkthrough_router()).flit_energy_walkthrough()
        assert hooks.total_energy == pytest.approx(
            5 * single["E_flit"], rel=0.01)

    def test_per_event_counts(self):
        system = assembled_system()
        hooks = hooks_for(system)
        system.run(6)
        assert hooks.counts == {
            ev.BUFFER_WRITE: 1,
            ev.ARBITRATION: 1,
            ev.BUFFER_READ: 1,
            ev.XBAR_TRAVERSAL: 1,
            ev.LINK_TRAVERSAL: 1,
        }
