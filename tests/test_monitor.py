"""Unit tests for the network occupancy/utilization monitor."""

import pytest

from repro.sim.engine import Simulation
from repro.sim.monitor import NetworkMonitor
from repro.sim.network import Network
from repro.sim.topology import NORTH, Torus
from repro.sim.traffic import UniformRandomTraffic

from tests.conftest import small_config


class TestSampling:
    def test_covers_all_channels(self):
        net = Network(small_config("wormhole"))
        monitor = NetworkMonitor(net)
        assert len(monitor._channels) == 64  # 16 nodes x 4 links

    def test_idle_network_has_zero_utilization(self):
        net = Network(small_config("wormhole"))
        monitor = NetworkMonitor(net)
        for _ in range(10):
            net.step()
            monitor.sample()
        assert monitor.max_channel_utilization() == 0.0
        assert monitor.average_occupancy(0) == 0.0

    def test_single_flow_loads_its_channels_only(self):
        net = Network(small_config("wormhole"))
        monitor = NetworkMonitor(net)
        topo = net.topo
        src = topo.node_at(1, 1)
        # Sustained stream north for many packets.
        for _ in range(10):
            net.create_packet(src, topo.node_at(1, 2), 0)
        for _ in range(80):
            net.step()
            monitor.sample()
        utils = monitor.channel_utilization()
        assert utils[(src, NORTH)] > 0.3
        # A channel on the far side of the network stays idle.
        far = topo.node_at(3, 3)
        assert utils[(far, NORTH)] == 0.0

    def test_occupancy_tracks_buffered_flits(self):
        net = Network(small_config("wormhole", buffer_depth=2))
        monitor = NetworkMonitor(net)
        topo = net.topo
        for _ in range(6):
            net.create_packet(topo.node_at(0, 0), topo.node_at(0, 2), 0)
        peak_seen = 0
        for _ in range(150):
            net.step()
            monitor.sample()
        assert monitor.peak_occupancy(topo.node_at(0, 0)) >= 1
        assert monitor.average_occupancy(topo.node_at(0, 0)) > 0

    def test_queries_before_sampling_raise(self):
        monitor = NetworkMonitor(Network(small_config("wormhole")))
        with pytest.raises(ValueError):
            monitor.channel_utilization()
        with pytest.raises(ValueError):
            monitor.average_occupancy(0)

    def test_hottest_channels_labelled(self):
        net = Network(small_config("wormhole"))
        monitor = NetworkMonitor(net)
        net.create_packet(0, 5, 0)
        for _ in range(40):
            net.step()
            monitor.sample()
        top = monitor.hottest_channels(3)
        assert len(top) == 3
        label, util = top[0]
        assert "(" in label and util >= 0

    def test_hottest_channels_validates_count(self):
        monitor = NetworkMonitor(Network(small_config("wormhole")))
        with pytest.raises(ValueError):
            monitor.hottest_channels(0)


class TestEngineIntegration:
    def test_simulation_attaches_monitor(self):
        cfg = small_config("vc")
        traffic = UniformRandomTraffic(Torus(4), 0.03, seed=2)
        result = Simulation(cfg, traffic, warmup_cycles=100,
                            sample_packets=50, monitor=True).run()
        assert result.monitor is not None
        assert result.monitor.cycles == result.measured_cycles
        assert 0.0 < result.monitor.mean_channel_utilization() < 1.0
        assert "hottest channels" in result.monitor.report()

    def test_monitor_disabled_by_default(self):
        cfg = small_config("vc")
        traffic = UniformRandomTraffic(Torus(4), 0.03, seed=2)
        result = Simulation(cfg, traffic, warmup_cycles=100,
                            sample_packets=50).run()
        assert result.monitor is None

    def test_utilization_rises_with_load(self):
        cfg = small_config("wormhole")

        def mean_util(rate):
            traffic = UniformRandomTraffic(Torus(4), rate, seed=2)
            result = Simulation(cfg, traffic, warmup_cycles=150,
                                sample_packets=80, monitor=True).run()
            return result.monitor.mean_channel_utilization()

        assert mean_util(0.08) > 2 * mean_util(0.02)
