"""Failure-injection tests: the simulator's integrity guards must catch
tampering rather than silently mis-simulate."""

import pytest

from repro.sim.engine import DeadlockError, Simulation
from repro.sim.message import FlitType, Packet
from repro.sim.network import Network
from repro.sim.topology import LOCAL, NORTH, Torus
from repro.sim.traffic import UniformRandomTraffic

from tests.conftest import small_config

KINDS = ["wormhole", "vc", "central"]


class TestBufferIntegrity:
    @pytest.mark.parametrize("kind", KINDS)
    def test_forged_credit_caught(self, kind):
        """Injecting a credit that was never earned must trip the
        credit-overflow guard."""
        net = Network(small_config(kind))
        router = net.routers[0]
        with pytest.raises(RuntimeError, match="credit"):
            for _ in range(net.config.router.buffer_depth + 1):
                router.credit_return(NORTH, 0)

    @pytest.mark.parametrize("kind", KINDS)
    def test_buffer_overflow_caught(self, kind):
        """Forcing flits past the buffer depth must raise, not corrupt."""
        net = Network(small_config(kind))
        router = net.routers[0]
        packet = Packet(packet_id=0, src=0, dst=4, length_flits=1,
                        creation_cycle=0, route=[NORTH, LOCAL])
        depth = net.config.router.buffer_depth
        with pytest.raises(RuntimeError, match="overflow"):
            for _ in range(depth * net.config.router.num_vcs + 1):
                (flit,) = packet.make_flits()
                router.accept_flit(NORTH, flit)

    def test_credit_on_unwired_port_caught(self):
        net = Network(small_config("wormhole"))
        with pytest.raises(RuntimeError, match="un-wired"):
            net.routers[0].credit_return(LOCAL, 0)


class TestOrderingIntegrity:
    def test_wormhole_rejects_headless_stream(self):
        """A body flit at the head of an unconnected input is a protocol
        violation the router must detect."""
        net = Network(small_config("wormhole"))
        router = net.routers[0]
        packet = Packet(packet_id=0, src=0, dst=4, length_flits=3,
                        creation_cycle=0, route=[NORTH, LOCAL])
        body = packet.make_flits()[1]
        body.arrived_cycle = -1
        router.fifos[NORTH].append(body)
        with pytest.raises(RuntimeError, match="headed by"):
            router.allocation_phase(5)

    def test_vc_rejects_headless_stream(self):
        net = Network(small_config("vc"))
        router = net.routers[0]
        packet = Packet(packet_id=0, src=0, dst=4, length_flits=3,
                        creation_cycle=0, route=[NORTH, LOCAL])
        body = packet.make_flits()[1]
        body.arrived_cycle = -1
        router.vcs[NORTH][0].fifo.append(body)
        with pytest.raises(RuntimeError, match="headed by"):
            router.allocation_phase(5)


class TestConservationAudit:
    @pytest.mark.parametrize("kind", KINDS)
    def test_vanished_flit_caught_by_audit(self, kind):
        """Deleting a buffered flit mid-flight must fail the audit."""
        net = Network(small_config(kind))
        net.create_packet(0, 8, 0)
        for _ in range(4):
            net.step()
        victim = None
        for router in net.routers:
            if router.buffered_flits() > 0:
                victim = router
                break
        assert victim is not None
        if kind == "vc":
            for port in victim.vcs:
                for vc in port:
                    if vc.fifo:
                        vc.fifo.popleft()
                        break
                else:
                    continue
                break
        else:
            for fifo in victim.fifos:
                if fifo:
                    fifo.popleft()
                    break
        with pytest.raises(RuntimeError, match="conservation"):
            net.audit()

    def test_duplicated_flit_caught_by_audit(self):
        net = Network(small_config("wormhole"))
        net.create_packet(0, 8, 0)
        for _ in range(4):
            net.step()
        for router in net.routers:
            for fifo in router.fifos:
                if fifo:
                    fifo.append(fifo[0])  # duplicate
                    with pytest.raises(RuntimeError,
                                       match="conservation"):
                        net.audit()
                    return
        pytest.fail("no buffered flit found to duplicate")


class TestStallDetection:
    def test_frozen_output_port_trips_watchdog(self):
        """Freezing every router's traversal machinery (a modelled hard
        fault) is detected as a deadlock instead of hanging."""
        cfg = small_config("wormhole")
        traffic = UniformRandomTraffic(Torus(4), 0.05, seed=1)
        sim = Simulation(cfg, traffic, warmup_cycles=0,
                         sample_packets=5, watchdog_cycles=60)
        for router in sim.network.routers:
            router.out_credits = [0 if c is not None else None
                                  for c in router.out_credits]
            router.credit_return = lambda port, vc: None
        with pytest.raises(DeadlockError):
            sim.run()
