"""Unit tests for the event system and energy accountant."""

import pytest

from repro.core import events as ev
from repro.core.events import EnergyAccountant


class TestAccounting:
    def test_add_and_query(self):
        acc = EnergyAccountant(4)
        acc.add(0, ev.INPUT_BUFFER, ev.BUFFER_WRITE, 1e-12)
        acc.add(0, ev.CROSSBAR, ev.XBAR_TRAVERSAL, 2e-12)
        acc.add(1, ev.INPUT_BUFFER, ev.BUFFER_READ, 3e-12)
        assert acc.node_total(0) == pytest.approx(3e-12)
        assert acc.node_total(1) == pytest.approx(3e-12)
        assert acc.total_energy() == pytest.approx(6e-12)
        assert acc.component_energy(ev.INPUT_BUFFER) == pytest.approx(4e-12)

    def test_event_counts(self):
        acc = EnergyAccountant(2)
        acc.add(0, ev.ARBITER, ev.ARBITRATION, 1e-15)
        acc.add(0, ev.ARBITER, ev.ARBITRATION, 1e-15)
        acc.add(1, ev.ARBITER, ev.ARBITRATION, 1e-15)
        assert acc.event_count(ev.ARBITRATION) == 3
        assert acc.event_count(ev.ARBITRATION, node=0) == 2

    def test_count_parameter(self):
        acc = EnergyAccountant(1)
        acc.add(0, ev.LINK, ev.LINK_TRAVERSAL, 5e-12, count=5)
        assert acc.event_count(ev.LINK_TRAVERSAL) == 5
        assert acc.total_energy() == pytest.approx(5e-12)

    def test_reset_implements_warmup_exclusion(self):
        """Section 4.1 excludes the first 1000 cycles: reset() zeroes
        everything accumulated during warm-up."""
        acc = EnergyAccountant(2)
        acc.add(0, ev.LINK, ev.LINK_TRAVERSAL, 1.0)
        acc.reset()
        assert acc.total_energy() == 0.0
        assert acc.event_count(ev.LINK_TRAVERSAL) == 0

    def test_breakdown_covers_all_components(self):
        acc = EnergyAccountant(1)
        assert set(acc.breakdown()) == set(ev.COMPONENTS)

    def test_spatial_map_shape(self):
        acc = EnergyAccountant(16)
        acc.add(5, ev.INPUT_BUFFER, ev.BUFFER_WRITE, 7e-12)
        spatial = acc.spatial_map()
        assert len(spatial) == 16
        assert spatial[5] == pytest.approx(7e-12)
        assert sum(spatial) == pytest.approx(acc.total_energy())

    def test_unknown_component_rejected(self):
        acc = EnergyAccountant(1)
        with pytest.raises(ValueError):
            acc.component_energy("warp_core")

    def test_unknown_event_rejected(self):
        acc = EnergyAccountant(1)
        with pytest.raises(ValueError):
            acc.event_count("warp_jump")

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            EnergyAccountant(0)
