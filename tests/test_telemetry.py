"""Tests for the windowed telemetry subsystem.

The load-bearing property: summed window deltas must reproduce the
run-end accounting — per component, per node and per event — within
1e-9 relative, on both kernels.  Plus JSONL/CSV round-trips, the report
rendering, and the CLI integration.
"""

import csv
import json
import math

import pytest

from repro.core import events as ev
from repro.core.config import RunProtocol
from repro.core.presets import PRESETS
from repro.sim.engine import Simulation
from repro.sim.topology import topology_for
from repro.sim.traffic import UniformRandomTraffic
from repro.telemetry import (
    DEFAULT_WINDOW,
    TelemetryRecorder,
    telemetry_from_jsonl,
    telemetry_report,
    telemetry_to_csv,
    telemetry_to_jsonl,
)
from repro.telemetry.io import telemetry_rows
from tests.conftest import small_config

REL_TOL = 1e-9


def run_with_telemetry(config, kernel="sparse", window=32, rate=0.05,
                       warmup=60, sample=40, seed=1, **proto_kwargs):
    topo = topology_for(config)
    traffic = UniformRandomTraffic(topo, rate, seed=seed)
    protocol = RunProtocol(warmup_cycles=warmup, sample_packets=sample,
                           seed=seed, kernel=kernel,
                           telemetry_window=window, audit_every=50,
                           **proto_kwargs)
    return Simulation(config, traffic, protocol).run()


def assert_reproduces_accounting(result):
    """Summed windows == accountant totals (the acceptance criterion)."""
    record = result.telemetry
    accountant = result.accountant
    assert record.measured_cycles == result.measured_cycles
    for component, total in accountant.breakdown().items():
        recorded = record.component_energy_totals()[component]
        tol = REL_TOL * total if total else REL_TOL
        assert abs(recorded - total) <= tol, (
            f"{component}: windows sum to {recorded}, accountant {total}"
        )
    for node, total in enumerate(accountant.spatial_map()):
        recorded = record.node_energy_totals()[node]
        assert abs(recorded - total) <= REL_TOL * max(total, 1e-30), (
            f"node {node}: windows sum to {recorded}, accountant {total}"
        )
    for event in ev.EVENT_TYPES:
        assert record.event_totals()[event] == accountant.event_count(event)
    assert abs(record.total_energy_j() - accountant.total_energy()) \
        <= REL_TOL * accountant.total_energy()
    assert abs(record.total_power_w() - result.total_power_w) \
        <= REL_TOL * result.total_power_w


class TestAccountingEquivalence:
    @pytest.mark.parametrize("kernel", ["dense", "sparse"])
    def test_summed_windows_match_run_totals(self, kernel):
        result = run_with_telemetry(PRESETS["VC16"](), kernel=kernel)
        assert_reproduces_accounting(result)

    @pytest.mark.parametrize("kind", ["wormhole", "vc", "speculative_vc",
                                      "central"])
    def test_all_router_kinds(self, kind):
        result = run_with_telemetry(small_config(kind))
        assert_reproduces_accounting(result)

    def test_data_activity_mode(self):
        result = run_with_telemetry(
            small_config("vc").with_(activity_mode="data"))
        assert_reproduces_accounting(result)

    def test_with_leakage_and_clock(self):
        """Constant (traffic-insensitive) energy is deposited at
        finalization; it must land in the window series, not vanish."""
        cfg = small_config("vc").with_(include_leakage=True)
        result = run_with_telemetry(cfg)
        assert_reproduces_accounting(result)

    def test_window_larger_than_run_yields_one_window(self):
        result = run_with_telemetry(small_config("wormhole"),
                                    window=10**6)
        record = result.telemetry
        assert record.num_windows == 1
        assert_reproduces_accounting(result)

    def test_traffic_columns_without_power(self):
        result = run_with_telemetry(small_config("wormhole"),
                                    collect_power=False)
        record = result.telemetry
        assert record.component_energy_totals() == \
            dict.fromkeys(ev.COMPONENTS, 0.0)
        assert sum(record.injected_totals()) > 0
        # In-flight flits straddle the warm-up boundary, so measured
        # injections need not equal measured ejections exactly.
        assert sum(record.ejected_totals()) == \
            result.measured_flits_ejected


class TestWindowSeries:
    def test_window_boundaries_tile_the_measured_range(self):
        result = run_with_telemetry(PRESETS["VC16"](), window=16)
        record = result.telemetry
        assert record.windows[0].cycle_start == record.warmup_cycles
        assert record.windows[-1].cycle_end == result.total_cycles
        for prev, cur in zip(record.windows, record.windows[1:]):
            assert cur.cycle_start == prev.cycle_end
            assert cur.index == prev.index + 1
        # All but the residual window span exactly `window` cycles.
        for window in record.windows[:-1]:
            assert window.cycles == record.window

    def test_injection_ejection_totals_match_network(self):
        result = run_with_telemetry(PRESETS["VC16"]())
        record = result.telemetry
        assert sum(record.ejected_totals()) == result.measured_flits_ejected

    def test_occupancy_peaks_nonnegative_and_bounded(self):
        result = run_with_telemetry(PRESETS["VC16"](), rate=0.1)
        peaks = result.telemetry.occupancy_peaks()
        assert len(peaks) == 16
        assert all(p >= 0 for p in peaks)
        assert max(peaks) > 0

    def test_spans_recorded(self):
        record = run_with_telemetry(small_config("wormhole")).telemetry
        assert set(record.spans_s) == {"inject", "router_step", "observe",
                                       "finalize"}
        assert all(s >= 0 for s in record.spans_s.values())
        assert record.spans_s["router_step"] > 0

    def test_window_power_series_positive_under_load(self):
        record = run_with_telemetry(PRESETS["VC16"](), rate=0.1).telemetry
        series = record.window_power_w()
        assert len(series) == record.num_windows
        assert all(p > 0 for p in series)

    def test_disabled_by_default(self):
        topo = topology_for(small_config("wormhole"))
        traffic = UniformRandomTraffic(topo, 0.05, seed=1)
        protocol = RunProtocol(warmup_cycles=50, sample_packets=20)
        result = Simulation(small_config("wormhole"), traffic,
                            protocol).run()
        assert result.telemetry is None

    def test_recorder_rejects_bad_window(self):
        from repro.sim.network import Network
        network = Network(small_config("wormhole"))
        with pytest.raises(ValueError, match="window"):
            TelemetryRecorder(network, network.binding, 0)

    def test_protocol_rejects_negative_window(self):
        with pytest.raises(ValueError, match="telemetry_window"):
            RunProtocol(telemetry_window=-1)


class TestRoundTrip:
    def test_jsonl_round_trip_is_exact(self, tmp_path):
        record = run_with_telemetry(PRESETS["VC16"]()).telemetry
        path = tmp_path / "telemetry.jsonl"
        telemetry_to_jsonl(record, str(path))
        back = telemetry_from_jsonl(str(path))
        assert back.window == record.window
        assert back.num_windows == record.num_windows
        assert back.warmup_cycles == record.warmup_cycles
        assert back.kernel == record.kernel
        assert back.spans_s == record.spans_s
        # Python JSON floats round-trip exactly: bit-identical energy.
        assert back.component_energy_totals() == \
            record.component_energy_totals()
        assert back.node_energy_totals() == record.node_energy_totals()
        assert back.event_totals() == record.event_totals()
        for orig, read in zip(record.windows, back.windows):
            assert read.energy_j == orig.energy_j
            assert read.events == orig.events
            assert read.occupancy == orig.occupancy

    def test_jsonl_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"type": "header", "schema": 999}) + "\n")
        with pytest.raises(ValueError, match="schema"):
            telemetry_from_jsonl(str(path))

    def test_jsonl_rejects_missing_header(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="header"):
            telemetry_from_jsonl(str(path))

    def test_csv_rows_sum_to_run_energy(self, tmp_path):
        result = run_with_telemetry(PRESETS["VC16"]())
        path = tmp_path / "telemetry.csv"
        telemetry_to_csv(result.telemetry, str(path))
        with open(path) as f:
            rows = list(csv.DictReader(f))
        assert rows
        total = sum(float(r["energy_j"]) for r in rows)
        assert abs(total - result.accountant.total_energy()) \
            <= 1e-9 * result.accountant.total_energy()
        events = sum(int(r["events"]) for r in rows)
        assert events == sum(result.telemetry.event_totals().values())

    def test_rows_carry_grid_coordinates(self):
        record = run_with_telemetry(PRESETS["VC16"]()).telemetry
        for row in telemetry_rows(record):
            assert row["node"] == row["y"] * record.width + row["x"]


class TestReportRendering:
    def test_report_reproduces_breakdown(self):
        """The acceptance walk: a report rendered purely from windowed
        telemetry shows the same component power as the live result."""
        from repro.core.report import format_power

        result = run_with_telemetry(PRESETS["VC16"](), rate=0.08)
        text = telemetry_report(result.telemetry)
        live = result.power_breakdown_w()
        for component, power in live.items():
            if power == 0.0:
                continue
            assert component in text
            assert format_power(power) in text
        assert "power breakdown" in text
        assert "per-node power" in text
        assert "time series" in text
        assert "engine phase spans" in text

    def test_report_without_series(self):
        record = run_with_telemetry(small_config("wormhole")).telemetry
        assert "time series" not in telemetry_report(record, series=False)

    def test_spatial_grid_shape(self):
        from repro.telemetry.report import spatial_table

        record = run_with_telemetry(PRESETS["VC16"]()).telemetry
        lines = spatial_table(record).splitlines()
        assert len(lines) == record.height + 1  # rows + x-axis legend


class TestCli:
    def test_run_records_and_report_renders(self, tmp_path, capsys):
        from repro.cli import main

        jsonl = tmp_path / "run.jsonl"
        assert main(["run", "--preset", "VC16", "--rate", "0.05",
                     "--sample", "60", "--warmup", "80",
                     "--telemetry-window", "25",
                     "--telemetry-jsonl", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        assert jsonl.exists()

        assert main(["report", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "power breakdown (summed windows):" in out
        assert "engine phase spans:" in out

    def test_jsonl_flag_implies_default_window(self, tmp_path, capsys):
        from repro.cli import main

        jsonl = tmp_path / "implied.jsonl"
        assert main(["run", "--preset", "VC16", "--rate", "0.05",
                     "--sample", "40", "--warmup", "50",
                     "--telemetry-jsonl", str(jsonl)]) == 0
        record = telemetry_from_jsonl(str(jsonl))
        assert record.window == DEFAULT_WINDOW

    def test_report_csv_conversion(self, tmp_path, capsys):
        from repro.cli import main

        jsonl = tmp_path / "run.jsonl"
        out_csv = tmp_path / "run.csv"
        main(["run", "--preset", "VC16", "--rate", "0.05",
              "--sample", "40", "--warmup", "50",
              "--telemetry-jsonl", str(jsonl)])
        capsys.readouterr()
        assert main(["report", str(jsonl), "--no-series",
                     "--csv", str(out_csv)]) == 0
        assert out_csv.exists()
        with open(out_csv) as f:
            assert "energy_j" in f.readline()
