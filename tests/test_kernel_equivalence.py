"""Dense-vs-sparse kernel equivalence matrix.

The sparse kernel (active-router scheduling, bitmask allocation scans,
fused per-router work passes, fast-matrix arbiters and counter-based
average-mode energy accounting) must be semantically invisible: for any
configuration, traffic pattern and seed it must produce bit-identical
performance results — the same per-packet latencies, cycle counts and
flit counts — and energy totals equal to within float-reassociation
tolerance (the counter path sums each per-event constant once instead of
event-by-event, which reorders additions but changes nothing else).

Every sparse run here also executes the flit-conservation ``audit()``
periodically, so the fast-path bookkeeping (occupancy counters, pending
bitmasks, allocation masks, active-set membership) is verified against
the structures it shadows while the equivalence is checked.
"""

import random

import pytest

from repro.core.config import RunProtocol
from repro.core.presets import PRESETS
from repro.sim.arbiters import FastMatrixArbiter, MatrixArbiter
from repro.sim.engine import Simulation
from repro.sim.topology import topology_for
from repro.sim.traffic import TransposeTraffic, UniformRandomTraffic
from tests.conftest import small_config

REL_TOL = 1e-12


def _run(config, kernel, traffic_cls, rate, seed, warmup, sample):
    topo = topology_for(config)
    traffic = traffic_cls(topo, rate, seed=seed)
    protocol = RunProtocol(
        warmup_cycles=warmup,
        sample_packets=sample,
        seed=seed,
        kernel=kernel,
        # Audit the sparse kernel's maintained state as it runs; the
        # dense kernel is audited too, pinning the shared invariants.
        audit_every=40,
    )
    return Simulation(config, traffic, protocol).run()


def assert_equivalent(dense, sparse):
    """Bit-identical performance results; energy within tolerance."""
    assert dense.latency.latencies == sparse.latency.latencies
    assert dense.total_cycles == sparse.total_cycles
    assert dense.measured_cycles == sparse.measured_cycles
    assert dense.flits_injected == sparse.flits_injected
    assert dense.flits_ejected == sparse.flits_ejected
    assert dense.measured_flits_ejected == sparse.measured_flits_ejected
    assert dense.packets_delivered == sparse.packets_delivered
    d_total = dense.total_energy_j
    s_total = sparse.total_energy_j
    assert d_total > 0
    assert abs(d_total - s_total) <= REL_TOL * d_total
    d_nodes = dense.accountant.spatial_map()
    s_nodes = sparse.accountant.spatial_map()
    assert len(d_nodes) == len(s_nodes)
    for node, (d, s) in enumerate(zip(d_nodes, s_nodes)):
        assert abs(d - s) <= REL_TOL * max(abs(d), 1e-30), (
            f"node {node}: dense {d} vs sparse {s}"
        )


def _pair(config, traffic_cls=UniformRandomTraffic, rate=0.05, seed=1,
          warmup=60, sample=40):
    dense = _run(config, "dense", traffic_cls, rate, seed, warmup, sample)
    sparse = _run(config, "sparse", traffic_cls, rate, seed, warmup, sample)
    assert_equivalent(dense, sparse)


# --- all paper presets -------------------------------------------------------

@pytest.mark.parametrize("preset_name", sorted(PRESETS))
def test_presets_uniform(preset_name):
    _pair(PRESETS[preset_name](), rate=0.04, sample=30, warmup=50)


# --- traffic patterns x seeds on the flagship config -------------------------

@pytest.mark.parametrize("traffic_cls", [UniformRandomTraffic,
                                         TransposeTraffic])
@pytest.mark.parametrize("seed", [1, 2])
def test_vc16_traffic_and_seeds(traffic_cls, seed):
    _pair(PRESETS["VC16"](), traffic_cls=traffic_cls, rate=0.10,
          seed=seed, warmup=80, sample=60)


# --- all router kinds x topologies x activity modes --------------------------

@pytest.mark.parametrize("kind", ["wormhole", "vc", "speculative_vc",
                                  "central"])
@pytest.mark.parametrize("topology", ["torus", "mesh"])
def test_router_kinds_topologies(kind, topology):
    _pair(small_config(kind).with_(topology=topology))


@pytest.mark.parametrize("kind", ["wormhole", "vc", "speculative_vc",
                                  "central"])
def test_router_kinds_data_mode(kind):
    # data mode tracks per-payload switching activity: the sparse kernel
    # forfeits the counter fast path but keeps active-router scheduling,
    # and the per-event Hamming deposits must match exactly.
    _pair(small_config(kind).with_(activity_mode="data"))


# --- arbiter equivalence (pins the FastMatrixArbiter docstring claim) --------

def test_fast_matrix_arbiter_matches_reference():
    rng = random.Random(7)
    size = 5
    ref = MatrixArbiter(size)
    fast = FastMatrixArbiter(size)
    for _ in range(500):
        requests = sorted(rng.sample(range(size),
                                     rng.randrange(1, size + 1)))
        assert ref.grant(requests) == fast.grant(requests)


def test_fast_matrix_arbiter_grant_single_matches_grant():
    rng = random.Random(11)
    size = 4
    ref = FastMatrixArbiter(size)
    single = FastMatrixArbiter(size)
    for _ in range(300):
        if rng.random() < 0.5:
            r = rng.randrange(size)
            assert ref.grant([r]) == single.grant_single(r)
        else:
            requests = sorted(rng.sample(range(size),
                                         rng.randrange(1, size + 1)))
            assert ref.grant(requests) == single.grant(requests)
    assert ref._stamp == single._stamp
