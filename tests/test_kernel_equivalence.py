"""Dense-vs-sparse kernel equivalence matrix.

The sparse kernel (active-router scheduling, bitmask allocation scans,
fused per-router work passes, fast-matrix arbiters and counter-based
average-mode energy accounting) must be semantically invisible: for any
configuration, traffic pattern and seed it must produce bit-identical
performance results — the same per-packet latencies, cycle counts and
flit counts — and energy totals equal to within float-reassociation
tolerance (the counter path sums each per-event constant once instead of
event-by-event, which reorders additions but changes nothing else).

Every sparse run here also executes the flit-conservation ``audit()``
periodically, so the fast-path bookkeeping (occupancy counters, pending
bitmasks, allocation masks, active-set membership) is verified against
the structures it shadows while the equivalence is checked.
"""

import random

import pytest

from repro.core.config import RunProtocol
from repro.core.presets import PRESETS
from repro.faults import FaultEvent, FaultSpec
from repro.sim.arbiters import FastMatrixArbiter, MatrixArbiter
from repro.sim.engine import Simulation
from repro.sim.topology import topology_for
from repro.sim.traffic import TransposeTraffic, UniformRandomTraffic
from tests.conftest import small_config

REL_TOL = 1e-12


def _run(config, kernel, traffic_cls, rate, seed, warmup, sample,
         monitor=False, telemetry_window=0, faults=None):
    topo = topology_for(config)
    traffic = traffic_cls(topo, rate, seed=seed)
    protocol = RunProtocol(
        warmup_cycles=warmup,
        sample_packets=sample,
        seed=seed,
        kernel=kernel,
        # Audit the sparse kernel's maintained state as it runs; the
        # dense kernel is audited too, pinning the shared invariants.
        audit_every=40,
        monitor=monitor,
        telemetry_window=telemetry_window,
        faults=faults,
        # Degraded fabrics may legitimately stall; equivalence must hold
        # for the terminal status too, so never raise mid-run.
        on_stall="finish" if faults is not None else "raise",
        livelock_cycles=20_000 if faults is not None else 0,
    )
    return Simulation(config, traffic, protocol).run()


def assert_equivalent(dense, sparse):
    """Bit-identical performance results; energy within tolerance."""
    assert dense.latency.latencies == sparse.latency.latencies
    assert dense.total_cycles == sparse.total_cycles
    assert dense.measured_cycles == sparse.measured_cycles
    assert dense.flits_injected == sparse.flits_injected
    assert dense.flits_ejected == sparse.flits_ejected
    assert dense.measured_flits_ejected == sparse.measured_flits_ejected
    assert dense.packets_delivered == sparse.packets_delivered
    d_total = dense.total_energy_j
    s_total = sparse.total_energy_j
    assert d_total > 0
    assert abs(d_total - s_total) <= REL_TOL * d_total
    d_nodes = dense.accountant.spatial_map()
    s_nodes = sparse.accountant.spatial_map()
    assert len(d_nodes) == len(s_nodes)
    for node, (d, s) in enumerate(zip(d_nodes, s_nodes)):
        assert abs(d - s) <= REL_TOL * max(abs(d), 1e-30), (
            f"node {node}: dense {d} vs sparse {s}"
        )


def _pair(config, traffic_cls=UniformRandomTraffic, rate=0.05, seed=1,
          warmup=60, sample=40):
    dense = _run(config, "dense", traffic_cls, rate, seed, warmup, sample)
    sparse = _run(config, "sparse", traffic_cls, rate, seed, warmup, sample)
    assert_equivalent(dense, sparse)


# --- all paper presets -------------------------------------------------------

@pytest.mark.parametrize("preset_name", sorted(PRESETS))
def test_presets_uniform(preset_name):
    _pair(PRESETS[preset_name](), rate=0.04, sample=30, warmup=50)


# --- traffic patterns x seeds on the flagship config -------------------------

@pytest.mark.parametrize("traffic_cls", [UniformRandomTraffic,
                                         TransposeTraffic])
@pytest.mark.parametrize("seed", [1, 2])
def test_vc16_traffic_and_seeds(traffic_cls, seed):
    _pair(PRESETS["VC16"](), traffic_cls=traffic_cls, rate=0.10,
          seed=seed, warmup=80, sample=60)


# --- all router kinds x topologies x activity modes --------------------------

@pytest.mark.parametrize("kind", ["wormhole", "vc", "speculative_vc",
                                  "central"])
@pytest.mark.parametrize("topology", ["torus", "mesh"])
def test_router_kinds_topologies(kind, topology):
    _pair(small_config(kind).with_(topology=topology))


@pytest.mark.parametrize("kind", ["wormhole", "vc", "speculative_vc",
                                  "central"])
def test_router_kinds_data_mode(kind):
    # data mode tracks per-payload switching activity: the sparse kernel
    # forfeits the counter fast path but keeps active-router scheduling,
    # and the per-event Hamming deposits must match exactly.
    _pair(small_config(kind).with_(activity_mode="data"))


# --- monitor observability under both kernels --------------------------------

def assert_monitor_equivalent(dense, sparse):
    """The monitor's counters are maintained data, not per-cycle scans —
    they must still be bit-identical between kernels."""
    dm, sm = dense.monitor, sparse.monitor
    assert dm.cycles == sm.cycles
    assert dm.channel_utilization() == sm.channel_utilization()
    assert dm.ejection_counts() == sm.ejection_counts()
    n = len(dm.network.routers)
    for node in range(n):
        assert dm.average_occupancy(node) == sm.average_occupancy(node), (
            f"node {node} occupancy sum diverged"
        )
        assert dm.peak_occupancy(node) == sm.peak_occupancy(node), (
            f"node {node} occupancy peak diverged"
        )


@pytest.mark.parametrize("kind", ["wormhole", "vc", "speculative_vc",
                                  "central"])
def test_monitor_equivalence(kind):
    config = small_config(kind)
    dense = _run(config, "dense", UniformRandomTraffic, 0.06, 1, 60, 40,
                 monitor=True)
    sparse = _run(config, "sparse", UniformRandomTraffic, 0.06, 1, 60, 40,
                  monitor=True)
    assert_equivalent(dense, sparse)
    assert_monitor_equivalent(dense, sparse)
    assert dense.monitor.max_channel_utilization() > 0


def test_monitor_equivalence_under_load():
    config = PRESETS["VC16"]()
    dense = _run(config, "dense", TransposeTraffic, 0.12, 2, 80, 60,
                 monitor=True)
    sparse = _run(config, "sparse", TransposeTraffic, 0.12, 2, 80, 60,
                  monitor=True)
    assert_equivalent(dense, sparse)
    assert_monitor_equivalent(dense, sparse)
    assert max(sparse.monitor.ejection_counts()) > 0


# --- telemetry observability under both kernels -------------------------------

def test_telemetry_equivalence():
    config = PRESETS["VC16"]()
    dense = _run(config, "dense", UniformRandomTraffic, 0.06, 1, 60, 40,
                 telemetry_window=16)
    sparse = _run(config, "sparse", UniformRandomTraffic, 0.06, 1, 60, 40,
                  telemetry_window=16)
    assert_equivalent(dense, sparse)
    dt, st = dense.telemetry, sparse.telemetry
    assert dt.num_windows == st.num_windows
    assert dt.event_totals() == st.event_totals()
    for dw, sw in zip(dt.windows, st.windows):
        assert (dw.cycle_start, dw.cycle_end) == (sw.cycle_start,
                                                  sw.cycle_end)
        assert dw.events == sw.events
        assert dw.injected == sw.injected
        assert dw.ejected == sw.ejected
        assert dw.occupancy == sw.occupancy
        for component, col in dw.energy_j.items():
            s_col = sw.energy_j[component]
            for d, s in zip(col, s_col):
                assert abs(d - s) <= REL_TOL * max(abs(d), 1e-30)


# --- faulted fabrics under both kernels --------------------------------------
#
# The engine applies fault events through one hook shared by the dense
# and sparse kernels, so a seeded FaultSpec must perturb both timelines
# identically — including the fault outcome counters and the terminal
# status.

def assert_faulted_equivalent(dense, sparse):
    assert_equivalent(dense, sparse)
    assert dense.status == sparse.status
    assert dense.flits_dropped == sparse.flits_dropped
    assert dense.packets_dropped == sparse.packets_dropped
    assert dense.packets_misrouted == sparse.packets_misrouted
    assert dense.sample_dropped == sparse.sample_dropped


@pytest.mark.parametrize("kind", ["wormhole", "vc"])
@pytest.mark.parametrize("policy", ["misroute", "drop"])
def test_random_faults_equivalent(kind, policy):
    config = small_config(kind)
    spec = FaultSpec(seed=9, policy=policy, link_kills=2, link_flips=1,
                     onset_start=70, onset_end=200)
    dense = _run(config, "dense", UniformRandomTraffic, 0.06, 1, 60, 40,
                 faults=spec)
    sparse = _run(config, "sparse", UniformRandomTraffic, 0.06, 1, 60, 40,
                  faults=spec)
    assert_faulted_equivalent(dense, sparse)
    assert dense.flits_dropped + dense.packets_misrouted > 0


def test_freeze_and_stuck_vc_equivalent():
    config = small_config("vc")
    spec = FaultSpec(events=(
        FaultEvent("router_freeze", 90, 5),
        FaultEvent("vc_stuck", 100, 6, 2, 0),
        FaultEvent("router_thaw", 220, 5),
    ))
    dense = _run(config, "dense", UniformRandomTraffic, 0.06, 1, 60, 40,
                 faults=spec)
    sparse = _run(config, "sparse", UniformRandomTraffic, 0.06, 1, 60, 40,
                  faults=spec)
    assert_faulted_equivalent(dense, sparse)


# --- arbiter equivalence (pins the FastMatrixArbiter docstring claim) --------

def test_fast_matrix_arbiter_matches_reference():
    rng = random.Random(7)
    size = 5
    ref = MatrixArbiter(size)
    fast = FastMatrixArbiter(size)
    for _ in range(500):
        requests = sorted(rng.sample(range(size),
                                     rng.randrange(1, size + 1)))
        assert ref.grant(requests) == fast.grant(requests)


def test_fast_matrix_arbiter_grant_single_matches_grant():
    rng = random.Random(11)
    size = 4
    ref = FastMatrixArbiter(size)
    single = FastMatrixArbiter(size)
    for _ in range(300):
        if rng.random() < 0.5:
            r = rng.randrange(size)
            assert ref.grant([r]) == single.grant_single(r)
        else:
            requests = sorted(rng.sample(range(size),
                                         rng.randrange(1, size + 1)))
            assert ref.grant(requests) == single.grant(requests)
    assert ref._stamp == single._stamp
