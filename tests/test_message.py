"""Unit tests for packets and flits."""

import pytest

from repro.sim.message import Flit, FlitType, Packet


def packet(length=5, pid=0):
    return Packet(packet_id=pid, src=0, dst=5, length_flits=length,
                  creation_cycle=10, route=[0, 2, 4])


class TestSegmentation:
    def test_five_flit_packet_structure(self):
        flits = packet(5).make_flits()
        assert [f.ftype for f in flits] == [
            FlitType.HEAD, FlitType.BODY, FlitType.BODY, FlitType.BODY,
            FlitType.TAIL]

    def test_two_flit_packet_has_no_body(self):
        flits = packet(2).make_flits()
        assert [f.ftype for f in flits] == [FlitType.HEAD, FlitType.TAIL]

    def test_single_flit_packet_is_head_tail(self):
        (flit,) = packet(1).make_flits()
        assert flit.ftype == FlitType.HEAD_TAIL
        assert flit.is_head and flit.is_tail

    def test_sequence_numbers(self):
        flits = packet(4).make_flits()
        assert [f.seq for f in flits] == [0, 1, 2, 3]

    def test_payloads_attached(self):
        flits = packet(3).make_flits(payloads=[1, 2, 3])
        assert [f.payload for f in flits] == [1, 2, 3]

    def test_payload_count_must_match(self):
        with pytest.raises(ValueError):
            packet(3).make_flits(payloads=[1, 2])

    def test_rejects_empty_packet(self):
        p = packet(5)
        p.length_flits = 0
        with pytest.raises(ValueError):
            p.make_flits()


class TestFlitTypes:
    def test_head_predicates(self):
        assert FlitType.HEAD.is_head and not FlitType.HEAD.is_tail
        assert FlitType.TAIL.is_tail and not FlitType.TAIL.is_head
        assert not FlitType.BODY.is_head and not FlitType.BODY.is_tail
        assert FlitType.HEAD_TAIL.is_head and FlitType.HEAD_TAIL.is_tail


class TestRouting:
    def test_head_consults_route_by_index(self):
        p = packet()
        head = p.make_flits()[0]
        assert head.next_output_port() == 0
        head.route_idx = 2
        assert head.next_output_port() == 4

    def test_route_exhaustion_raises(self):
        p = packet()
        head = p.make_flits()[0]
        head.route_idx = 3
        with pytest.raises(IndexError):
            head.next_output_port()


class TestLatency:
    def test_latency_spans_creation_to_ejection(self):
        p = packet()
        p.eject_cycle = 42
        assert p.latency == 32

    def test_latency_before_ejection_raises(self):
        with pytest.raises(ValueError):
            packet().latency
