"""Cross-validation of the analytic estimator against the simulator.

The analytic subsystem doubles as a standing correctness check: zero-load
latency must match simulation *exactly* (same pipeline arithmetic), and
power / saturation predictions must land within stated tolerances of
simulated values on the paper's Figure 5 configuration.
"""

import math
import time

import pytest

from repro.core.config import RunProtocol
from repro.core.orion import Orion
from repro.core.presets import preset
from repro.analytic import (
    AnalyticEstimate,
    ZERO_LOAD_PIPELINE_DEPTH,
    estimate,
    estimate_saturation,
    flow_matrix,
    mean_hops,
    pipeline_depth,
    queueing_delay,
    router_event_rates,
    traffic_flows,
    zero_load_latency,
)
from repro.sim.routing import dimension_ordered_route
from repro.sim.topology import topology_for
from repro.sim.traffic import TraceTraffic

from tests.conftest import small_config

#: One uncontended packet per (src, dst) pair: a trace with a single
#: packet measures pure pipeline latency.
SINGLE_PACKET = RunProtocol(warmup_cycles=0, sample_packets=1,
                            collect_power=False)

PAIRS = [(0, 5), (0, 15), (3, 12), (1, 2), (0, 3)]


def simulated_single_packet_latency(config, src, dst):
    topo = topology_for(config)
    traffic = TraceTraffic(topo, [(0, src, dst)])
    return Orion(config).run(traffic, SINGLE_PACKET).avg_latency


class TestZeroLoadExactness:
    """Acceptance: analytic zero-load latency equals simulated latency,
    exactly in cycles, for mesh and torus presets."""

    @pytest.mark.parametrize("name", ["WH64", "VC16", "CB", "XB"])
    @pytest.mark.parametrize("topology", ["torus", "mesh"])
    def test_presets_match_exactly(self, name, topology):
        config = preset(name).with_(topology=topology)
        topo = topology_for(config)
        for src, dst in PAIRS:
            hops = len(dimension_ordered_route(
                topo, src, dst, tie_break=config.tie_break)) - 1
            assert simulated_single_packet_latency(config, src, dst) == \
                zero_load_latency(config, hops), \
                f"{name}/{topology} {src}->{dst} ({hops} hops)"

    def test_speculative_router_matches_exactly(self):
        config = small_config("vc").with_router(kind="speculative_vc")
        topo = topology_for(config)
        for src, dst in PAIRS:
            hops = len(dimension_ordered_route(
                topo, src, dst, tie_break=config.tie_break)) - 1
            assert simulated_single_packet_latency(config, src, dst) == \
                zero_load_latency(config, hops)

    def test_depth_map_covers_all_router_kinds(self):
        from repro.sim.routers import ROUTER_CLASSES
        assert set(ZERO_LOAD_PIPELINE_DEPTH) == set(ROUTER_CLASSES)

    def test_known_kinds_have_positive_depth(self):
        for kind, depth in ZERO_LOAD_PIPELINE_DEPTH.items():
            assert depth >= 2, kind
        config = small_config("wormhole")
        assert pipeline_depth(config) == 2


class TestPowerCrossValidation:
    """Acceptance: analytic power within 15% of simulated, Figure 5
    uniform-traffic configuration (VC16)."""

    def test_vc16_uniform_total_power_within_15pct(self):
        config = preset("VC16")
        est = estimate(config, "uniform", 0.05, with_saturation=False)
        sim = Orion(config).run_uniform(
            0.05, RunProtocol(warmup_cycles=400, sample_packets=400))
        rel = abs(est.total_power_w - sim.total_power_w) / sim.total_power_w
        assert rel < 0.15, f"analytic {est.total_power_w:.3f} W vs " \
                           f"simulated {sim.total_power_w:.3f} W"

    def test_vc16_breakdown_components_track_simulation(self):
        config = preset("VC16")
        est = estimate(config, "uniform", 0.05, with_saturation=False)
        sim = Orion(config).run_uniform(
            0.05, RunProtocol(warmup_cycles=400, sample_packets=400))
        sim_breakdown = sim.power_breakdown_w()
        for component, sim_w in sim_breakdown.items():
            if sim_w <= 0.0:
                continue
            assert est.power_breakdown_w[component] == \
                pytest.approx(sim_w, rel=0.15), component

    def test_event_rates_match_simulated_counts(self):
        """Predicted events/cycle track the accountant's counts."""
        config = preset("VC16")
        flows = flow_matrix(config, "uniform", 0.04)
        from repro.analytic.power import estimate_power
        est = estimate_power(flows)
        sim = Orion(config).run_uniform(
            0.04, RunProtocol(warmup_cycles=400, sample_packets=400))
        for event in ("buffer_write", "buffer_read", "xbar_traversal",
                      "link_traversal"):
            simulated = sim.accountant.event_count(event) / \
                sim.measured_cycles
            assert est.event_rates[event] == \
                pytest.approx(simulated, rel=0.15), event

    def test_constant_power_configs_include_idle_links(self):
        """CB/XB presets burn chip-to-chip link power at zero traffic."""
        config = preset("XB")
        est = estimate(config, "uniform", 0.001, with_saturation=False)
        # 16 nodes x 4 outgoing links x 3 W of constant link power.
        assert est.power_breakdown_w["link"] > 100.0


class TestSaturationCrossValidation:
    """Acceptance: analytic saturation within 20% of simulated, Figure 5
    uniform-traffic configuration (VC16)."""

    def test_vc16_uniform_saturation_within_20pct(self):
        config = preset("VC16")
        predicted = estimate_saturation(config, "uniform").rate
        protocol = RunProtocol(warmup_cycles=400, sample_packets=300)
        sweep = Orion(config).sweep_uniform(
            [0.02, 0.11, 0.13, 0.15, 0.17], protocol)
        measured = sweep.saturation_rate(interpolate=True)
        assert measured is not None
        rel = abs(predicted - measured) / measured
        assert rel < 0.20, f"analytic {predicted:.4f} vs " \
                           f"measured {measured:.4f}"

    def test_saturation_below_throughput_bound(self):
        config = preset("VC16")
        sat = estimate_saturation(config, "uniform")
        assert 0.0 < sat.rate < sat.throughput_bound

    def test_zero_flow_traffic_never_saturates(self):
        """A hotspot kind with rate scaled to zero has no finite
        saturation point."""
        config = small_config("wormhole")
        base = flow_matrix(config, "uniform", 0.0)
        assert base.max_channel_load == 0.0


class TestFlowMatrix:
    def test_uniform_conservation(self):
        config = small_config("wormhole")
        flows = flow_matrix(config, "uniform", 0.1)
        n = topology_for(config).num_nodes
        assert flows.injection_packets == pytest.approx(0.1 * n)
        assert sum(flows.source_load) == pytest.approx(flows.injection_flits)
        # Flits crossing links = injected flits x average hops.
        assert flows.link_flits == pytest.approx(
            flows.injection_flits * flows.avg_hops)

    def test_loads_linear_in_rate(self):
        config = small_config("vc")
        one = flow_matrix(config, "uniform", 0.02)
        two = flow_matrix(config, "uniform", 0.04)
        for channel, load in one.channel_load.items():
            assert two.channel_load[channel] == pytest.approx(2 * load)
        scaled = one.scaled(2.0)
        assert scaled.channel_load == pytest.approx(two.channel_load)
        assert scaled.avg_hops == one.avg_hops

    def test_broadcast_rate_is_whole_network(self):
        config = small_config("wormhole")
        flows = flow_matrix(config, "broadcast", 0.12, source=9)
        assert flows.injection_packets == pytest.approx(0.12)
        assert flows.source_load[9] == pytest.approx(
            0.12 * config.packet_length_flits)
        assert sum(flows.source_load) == pytest.approx(flows.source_load[9])

    def test_transpose_diagonal_is_silent(self):
        topo = topology_for(small_config("wormhole"))
        flows = traffic_flows("transpose", topo, 0.1)
        diagonal = {topo.node_at(i, i) for i in range(4)}
        assert all(src not in diagonal for src, _ in flows)

    def test_hotspot_flows_sum_to_rate_per_sender(self):
        topo = topology_for(small_config("wormhole"))
        flows = traffic_flows("hotspot", topo, 0.1, hotspot=5)
        per_src = {}
        for (src, _dst), pkts in flows.items():
            per_src[src] = per_src.get(src, 0.0) + pkts
        for src, total in per_src.items():
            assert total == pytest.approx(0.1), f"source {src}"

    def test_bursty_average_flows_match_uniform(self):
        topo = topology_for(small_config("wormhole"))
        assert traffic_flows("bursty", topo, 0.1) == \
            traffic_flows("uniform", topo, 0.1)

    def test_unmodelled_traffic_rejected_with_hint(self):
        from repro.analytic.flows import FLOW_BUILDERS
        config = small_config("wormhole")
        saved = FLOW_BUILDERS.pop("tornado")
        try:
            with pytest.raises(ValueError, match="register_flow_builder"):
                flow_matrix(config, "tornado", 0.1)
        finally:
            FLOW_BUILDERS["tornado"] = saved

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            flow_matrix(small_config("wormhole"), "uniform", -0.1)

    def test_mean_hops_uniform_torus(self):
        """4x4 torus, uniform: mean minimal distance is 32/15."""
        assert mean_hops(small_config("wormhole"), "uniform") == \
            pytest.approx(32.0 / 15.0)


class TestLatencyModel:
    def test_queueing_grows_with_rate(self):
        config = small_config("vc")
        low = queueing_delay(flow_matrix(config, "uniform", 0.02))
        high = queueing_delay(flow_matrix(config, "uniform", 0.08))
        assert 0.0 < low < high

    def test_overloaded_channel_gives_infinite_latency(self):
        config = small_config("vc")
        flows = flow_matrix(config, "uniform", 0.9)
        assert math.isinf(queueing_delay(flows))

    def test_event_rate_model_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="event-rate"):
            router_event_rates("quantum", 1.0, 0.2)


class TestEstimateFacade:
    def test_orion_estimate_mirrors_module_function(self):
        config = preset("VC16")
        via_facade = Orion(config).estimate_uniform(0.05)
        direct = estimate(config, "uniform", 0.05)
        assert isinstance(via_facade, AnalyticEstimate)
        assert via_facade.avg_latency == direct.avg_latency
        assert via_facade.total_power_w == direct.total_power_w
        assert via_facade.saturation.rate == direct.saturation.rate

    def test_orion_estimate_saturation(self):
        config = preset("VC16")
        sat = Orion(config).estimate_saturation("uniform")
        assert 0.0 < sat.rate < sat.throughput_bound

    def test_is_saturated_flag(self):
        config = preset("VC16")
        below = Orion(config).estimate_uniform(0.02)
        assert not below.is_saturated
        above = Orion(config).estimate_traffic(
            "uniform", below.saturation.rate * 1.5)
        assert above.is_saturated

    def test_describe_is_printable(self):
        text = Orion(preset("WH64")).estimate_uniform(0.03).describe()
        assert "zero-load" in text and "saturation" in text

    def test_16x16_mesh_estimate_is_fast(self):
        """Acceptance: well under a second for a 16x16 mesh point."""
        config = preset("VC16").with_(topology="mesh", width=16, height=16)
        start = time.perf_counter()
        est = estimate(config, "uniform", 0.02)
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0, f"took {elapsed:.2f}s"
        assert math.isfinite(est.avg_latency)
        assert est.total_power_w > 0.0
        assert math.isfinite(est.saturation.rate)


class TestGuidedGrid:
    def test_grid_brackets_prediction_and_skips_deep_past(self):
        from repro.exp import guided_rate_grid
        config = preset("VC16")
        grid = guided_rate_grid(config, "uniform", points=8)
        sat = grid.prediction.rate
        assert min(grid.rates) < 0.5 * sat
        assert max(grid.rates) >= sat
        assert max(grid.rates) <= grid.skipped_above + 1e-12
        assert len(grid.rates) == 8

    def test_too_few_points_rejected(self):
        from repro.exp import guided_rate_grid
        with pytest.raises(ValueError, match=">= 4"):
            guided_rate_grid(preset("VC16"), "uniform", points=3)

    def test_guided_sweep_matches_dense_uniform_grid(self):
        """Acceptance: guided mode's saturation estimate matches a
        uniform dense-grid sweep within one grid step, on fewer
        simulated points."""
        from repro.exp import run_guided_sweep
        config = preset("VC16")
        protocol = RunProtocol(warmup_cycles=300, sample_packets=250)
        dense_rates = [0.02, 0.04, 0.06, 0.08, 0.10, 0.12,
                       0.14, 0.16, 0.18]
        dense = Orion(config).sweep_uniform(dense_rates, protocol)
        dense_sat = dense.saturation_rate()
        guided = run_guided_sweep(config, "uniform", protocol, points=8)
        guided_sat = guided.saturation_rate()
        assert dense_sat is not None and guided_sat is not None
        assert len(guided.grid.rates) < len(dense_rates)
        step = max(0.02, guided.grid.dense_step)
        assert abs(guided_sat - dense_sat) <= step + 1e-9
