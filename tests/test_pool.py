"""Warm worker-pool suite: equivalence, context reuse and chaos.

The pool's contract is that fan-out through it is *observationally
identical* to the serial path: same outcomes, in submission order, with
latency and flit counts exactly equal and energy bit-identical.  This
file pins that contract across router kinds, kernels and faulted runs,
pins ``Network.reset()`` context reuse against fresh construction, and
exercises the pool's failure modes (worker death mid-chunk, per-point
timeouts) against a dedicated pool whose stats make the recovery
visible.
"""

import multiprocessing
import os

import pytest

from repro.core.config import RunProtocol
from repro.exp import RunPoint, TrafficSpec, WorkerPool, run_points
from repro.faults import parse_fault_specs
from repro.sim.engine import Simulation, SimulationContext
from repro.sim.topology import topology_for
from repro.sim.traffic import (
    TRAFFIC_REGISTRY,
    TrafficParam,
    UniformRandomTraffic,
    register_traffic,
)

from tests.conftest import small_config

FAST = RunProtocol(warmup_cycles=100, sample_packets=40)


def _points(kinds=("wormhole",), kernels=("sparse",), rates=(0.05, 0.10),
            seeds=(1, 2), faults=None):
    points = []
    for kind in kinds:
        for kernel in kernels:
            for rate in rates:
                for seed in seeds:
                    protocol = RunProtocol(
                        warmup_cycles=100, sample_packets=40, seed=seed,
                        kernel=kernel, faults=faults)
                    points.append(RunPoint(
                        config=small_config(kind),
                        traffic=TrafficSpec("uniform"),
                        rate=rate, protocol=protocol,
                        label=f"{kind}-{kernel}"))
    return points


def _assert_outcomes_identical(serial, pooled):
    assert len(serial) == len(pooled)
    for left, right in zip(serial, pooled):
        assert left.point.describe() == right.point.describe()
        assert left.status == right.status
        assert left.ok == right.ok
        # Latency, cycle and flit-level figures must be exactly equal.
        assert left.avg_latency == right.avg_latency
        assert left.throughput_flits_per_cycle == \
            right.throughput_flits_per_cycle
        assert left.total_cycles == right.total_cycles
        assert left.flits_dropped == right.flits_dropped
        assert left.packets_misrouted == right.packets_misrouted
        # Energy is a float sum over identical event sequences.
        assert left.total_power_w == pytest.approx(
            right.total_power_w, rel=1e-12)
        for component, watts in left.breakdown_w.items():
            assert right.breakdown_w[component] == \
                pytest.approx(watts, rel=1e-12)


# --- pool vs serial equivalence ----------------------------------------------


@pytest.mark.parametrize("kind", ["wormhole", "vc", "central"])
def test_pool_matches_serial(kind):
    points = _points(kinds=(kind,))
    serial = run_points(points, processes=1)
    pool = WorkerPool(2)
    try:
        pooled = run_points(points, processes=2, pool=pool)
    finally:
        pool.close()
    _assert_outcomes_identical(serial, pooled)


def test_pool_matches_serial_both_kernels():
    points = _points(kernels=("dense", "sparse"))
    serial = run_points(points, processes=1)
    pooled = run_points(points, processes=2)
    _assert_outcomes_identical(serial, pooled)


def test_pool_matches_serial_with_faults():
    faults = parse_fault_specs([
        "link_kill:node=5,port=east,at=120",
        "router_freeze:node=6,at=150,for=60",
    ])
    points = _points(rates=(0.08,), seeds=(1, 2, 3), faults=faults)
    serial = run_points(points, processes=1)
    pooled = run_points(points, processes=2)
    _assert_outcomes_identical(serial, pooled)
    # The scenario must actually have perturbed the fabric, or the
    # equivalence above proves nothing about faulted runs.
    assert any(o.flits_dropped or o.packets_misrouted for o in serial)


def test_pool_outcomes_arrive_in_submission_order():
    points = _points(rates=(0.12, 0.03, 0.09, 0.06), seeds=(1,))
    outcomes = run_points(points, processes=2)
    assert [o.point.rate for o in outcomes] == [p.rate for p in points]


def test_pool_keep_results_carries_full_result():
    points = _points(rates=(0.05,), seeds=(1, 2))
    outcomes = run_points(points, processes=2, keep_results=True)
    for outcome in outcomes:
        assert outcome.result is not None
        assert outcome.result.avg_latency == outcome.avg_latency


# --- context reuse vs fresh construction -------------------------------------


@pytest.mark.parametrize("kernel", ["dense", "sparse"])
@pytest.mark.parametrize("kind", ["wormhole", "vc", "central"])
def test_context_reuse_matches_fresh(kind, kernel):
    """One reused context must reproduce fresh-construction results
    bit-for-bit across a sequence of (rate, seed) workloads."""
    config = small_config(kind)
    protocol = RunProtocol(warmup_cycles=100, sample_packets=40,
                           kernel=kernel)
    topo = topology_for(config)
    context = SimulationContext(config, protocol)
    for rate, seed in [(0.05, 1), (0.10, 2), (0.05, 3)]:
        proto = RunProtocol(warmup_cycles=100, sample_packets=40,
                            kernel=kernel, seed=seed)
        fresh = Simulation(
            config, UniformRandomTraffic(topo, rate, seed=seed),
            proto).run()
        reused = Simulation(
            config, UniformRandomTraffic(topo, rate, seed=seed),
            proto, context=context).run()
        assert reused.avg_latency == fresh.avg_latency
        assert reused.total_cycles == fresh.total_cycles
        assert reused.flits_ejected == fresh.flits_ejected
        assert reused.total_energy_j == pytest.approx(
            fresh.total_energy_j, rel=1e-12)


def test_context_reuse_matches_fresh_with_faults():
    """Faulted and healthy runs interleaved on one context: the reset
    must clear fault state (dead links, frozen routers) completely."""
    config = small_config("wormhole")
    protocol = RunProtocol(warmup_cycles=100, sample_packets=40)
    topo = topology_for(config)
    context = SimulationContext(config, protocol)
    faults = parse_fault_specs(["link_kill:node=5,port=east,at=120"])
    schedule = [(0.08, 1, faults), (0.08, 1, None), (0.08, 2, faults)]
    for rate, seed, fault_spec in schedule:
        proto = RunProtocol(warmup_cycles=100, sample_packets=40,
                            seed=seed, faults=fault_spec)
        fresh = Simulation(
            config, UniformRandomTraffic(topo, rate, seed=seed),
            proto).run()
        reused = Simulation(
            config, UniformRandomTraffic(topo, rate, seed=seed),
            proto, context=context).run()
        assert reused.avg_latency == fresh.avg_latency
        assert reused.flits_dropped == fresh.flits_dropped
        assert reused.total_energy_j == pytest.approx(
            fresh.total_energy_j, rel=1e-12)


def test_context_rejects_mismatched_structure():
    config = small_config("wormhole")
    context = SimulationContext(config, FAST)
    other = small_config("vc")
    with pytest.raises(ValueError):
        Simulation(other, UniformRandomTraffic(topology_for(other), 0.05),
                   FAST, context=context)


# --- chaos: worker death and timeouts ----------------------------------------


class _ExitOnceTraffic(UniformRandomTraffic):
    """Hard-kills the worker on first construction (marker file records
    the burn), succeeds after — models a crash mid-chunk that a respawn
    plus one retry must absorb."""

    def __init__(self, topo, rate, seed=1, marker=""):
        if marker and not os.path.exists(marker):
            open(marker, "w").close()
            os._exit(17)
        super().__init__(topo, rate, seed=seed)


class _SleepTraffic(UniformRandomTraffic):
    """Sleeps forever on construction — a runaway point for the
    timeout path."""

    def __init__(self, topo, rate, seed=1):
        import time
        while True:
            time.sleep(0.5)


@pytest.fixture
def pool_traffic():
    registered = []
    specs = [("pool_exit_once", _ExitOnceTraffic,
              [TrafficParam("marker", str, "")]),
             ("pool_sleep", _SleepTraffic, [])]
    for name, cls, params in specs:
        if name not in TRAFFIC_REGISTRY:
            register_traffic(name, cls, params=params,
                             description="pool chaos pattern")
            registered.append(name)
    yield
    for name in registered:
        TRAFFIC_REGISTRY.pop(name, None)


fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="pool workers require the fork start method")


@fork_only
@pytest.mark.chaos
def test_worker_killed_mid_chunk_respawns_and_retries(pool_traffic,
                                                      tmp_path):
    marker = str(tmp_path / "burned")
    config = small_config("wormhole")
    points = [
        RunPoint(config=config, traffic=TrafficSpec("uniform"),
                 rate=0.05, protocol=FAST),
        RunPoint(config=config,
                 traffic=TrafficSpec.of("pool_exit_once", marker=marker),
                 rate=0.05, protocol=FAST),
        RunPoint(config=config, traffic=TrafficSpec("uniform"),
                 rate=0.10, protocol=FAST),
    ]
    pool = WorkerPool(2)
    try:
        outcomes = run_points(points, processes=2, retries=1,
                              retry_backoff=0.05, pool=pool)
        stats = pool.stats()
    finally:
        pool.close()
    assert [o.status for o in outcomes] == ["ok", "ok", "ok"]
    # The flaky point burned one hard attempt (worker death) before
    # succeeding on the respawned worker.
    assert outcomes[1].attempts == 2
    assert stats["respawns"] >= 1


@fork_only
@pytest.mark.chaos
def test_runaway_point_times_out_through_pool(pool_traffic):
    config = small_config("wormhole")
    points = [
        RunPoint(config=config, traffic=TrafficSpec("uniform"),
                 rate=0.05, protocol=FAST),
        RunPoint(config=config, traffic=TrafficSpec.of("pool_sleep"),
                 rate=0.05, protocol=FAST),
        RunPoint(config=config, traffic=TrafficSpec("uniform"),
                 rate=0.10, protocol=FAST),
    ]
    pool = WorkerPool(2)
    try:
        outcomes = run_points(points, processes=2, point_timeout=0.5,
                              pool=pool)
        stats = pool.stats()
    finally:
        pool.close()
    assert [o.status for o in outcomes] == ["ok", "timeout", "ok"]
    assert "wall-clock" in outcomes[1].error
    assert outcomes[1].wall_seconds == pytest.approx(0.5)
    assert stats["timeouts"] >= 1


@fork_only
def test_pool_survives_reuse_across_batches(pool_traffic):
    """One pool, several sequential batches: contexts stay warm, stats
    accumulate, results stay correct."""
    pool = WorkerPool(2)
    try:
        first = run_points(_points(rates=(0.05,), seeds=(1, 2)),
                           processes=2, pool=pool)
        second = run_points(_points(rates=(0.10,), seeds=(1, 2)),
                            processes=2, pool=pool)
        stats = pool.stats()
    finally:
        pool.close()
    assert all(o.status == "ok" for o in first + second)
    assert stats["tasks_completed"] == len(first) + len(second)
    assert stats["respawns"] == 0


def test_pool_stats_and_close_idempotent():
    pool = WorkerPool(2)
    stats = pool.stats()
    assert set(stats) == {"workers", "workers_target", "workers_alive",
                          "tasks_completed", "respawns", "timeouts",
                          "reaped", "cancelled_batches"}
    pool.close()
    pool.close()  # second close is a no-op
    assert pool.closed
    with pytest.raises(RuntimeError):
        pool.run([(0, (None, False, 0, 0.25, True))])


# --- cancellation and elasticity ---------------------------------------------


def test_cancel_event_set_before_run_aborts_serial_path():
    import threading

    from repro.exp import RunCancelled

    cancel = threading.Event()
    cancel.set()
    with pytest.raises(RunCancelled):
        run_points(_points(rates=(0.05,), seeds=(1,)),
                   cancel_event=cancel)


@fork_only
@pytest.mark.chaos
def test_cancel_event_aborts_in_flight_pool_run(pool_traffic):
    """Tripping the cancel event mid-run kills the stuck worker (the
    point_timeout mechanism) and raises RunCancelled to the caller;
    the pool stays usable afterwards."""
    import threading

    from repro.exp import RunCancelled

    config = small_config("wormhole")
    points = [
        RunPoint(config=config, traffic=TrafficSpec.of("pool_sleep"),
                 rate=0.05, protocol=FAST),
    ]
    pool = WorkerPool(1)
    cancel = threading.Event()
    timer = threading.Timer(0.5, cancel.set)
    timer.start()
    try:
        with pytest.raises(RunCancelled):
            run_points(points, processes=1, pool=pool,
                       cancel_event=cancel)
        assert pool.stats()["cancelled_batches"] == 1
        after = run_points(_points(rates=(0.05,), seeds=(1,)),
                           processes=1, pool=pool)
        assert all(o.status == "ok" for o in after)
    finally:
        timer.cancel()
        pool.close()


@fork_only
def test_idle_workers_reaped_to_floor_and_regrown():
    import time

    pool = WorkerPool(2, idle_timeout_s=0.3)
    try:
        first = run_points(_points(rates=(0.05,), seeds=(1, 2)),
                           processes=2, pool=pool)
        assert all(o.status == "ok" for o in first)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline \
                and pool.stats()["workers"] > 1:
            time.sleep(0.05)
        stats = pool.stats()
        assert stats["workers"] == 1  # floor of one warm worker
        assert stats["workers_target"] == 2
        assert stats["reaped"] >= 1
        # Demand lazily re-grows the pool to its target size.  A
        # freshly spawned worker is itself reapable after 0.3s of
        # idleness, so under scheduler stall the reaper may shrink
        # the pool again before we observe the grow — keep regrowing
        # until we catch it at full size.
        regrown = 0
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and regrown < 2:
            pool._ensure_running()
            regrown = pool.stats()["workers"]
            if regrown < 2:
                time.sleep(0.05)
        assert regrown == 2
        again = run_points(_points(rates=(0.10,), seeds=(1, 2)),
                           processes=2, pool=pool)
        assert all(o.status == "ok" for o in again)
    finally:
        pool.close()
