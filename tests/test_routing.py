"""Unit tests for dimension-ordered source routing."""

import pytest

from repro.sim.routing import dimension_ordered_route, route_hops, route_nodes
from repro.sim.topology import EAST, LOCAL, NORTH, SOUTH, WEST, Mesh, Torus


class TestBasics:
    def test_route_ends_with_ejection(self):
        topo = Torus(4)
        route = dimension_ordered_route(topo, 0, 5)
        assert route[-1] == LOCAL

    def test_y_dimension_first(self):
        """Section 4.3: 'In our dimension-ordered routing, we route along
        the y-axis first.'"""
        topo = Torus(4)
        src = topo.node_at(0, 0)
        dst = topo.node_at(1, 1)
        route = dimension_ordered_route(topo, src, dst)
        assert route == [NORTH, EAST, LOCAL]

    def test_single_dimension_route(self):
        topo = Torus(4)
        route = dimension_ordered_route(
            topo, topo.node_at(0, 0), topo.node_at(0, 1))
        assert route == [NORTH, LOCAL]

    def test_rejects_self_route(self):
        with pytest.raises(ValueError):
            dimension_ordered_route(Torus(4), 3, 3)

    def test_rejects_unknown_tie_break(self):
        with pytest.raises(ValueError):
            dimension_ordered_route(Torus(4), 0, 1, tie_break="coin_flip")

    def test_route_hops(self):
        topo = Torus(4)
        route = dimension_ordered_route(
            topo, topo.node_at(0, 0), topo.node_at(1, 1))
        assert route_hops(route) == 2


class TestMinimality:
    def test_all_pairs_minimal_on_torus(self):
        topo = Torus(4)
        for src in range(16):
            for dst in range(16):
                if src == dst:
                    continue
                for tie in ("avoid_wrap", "even"):
                    route = dimension_ordered_route(topo, src, dst,
                                                    tie_break=tie)
                    assert route_hops(route) == \
                        topo.manhattan_distance(src, dst)

    def test_all_pairs_minimal_on_mesh(self):
        topo = Mesh(3)
        for src in range(9):
            for dst in range(9):
                if src == dst:
                    continue
                route = dimension_ordered_route(topo, src, dst)
                assert route_hops(route) == topo.manhattan_distance(src, dst)

    def test_routes_terminate_at_destination(self):
        topo = Torus(4)
        for src in range(16):
            for dst in range(16):
                if src == dst:
                    continue
                route = dimension_ordered_route(topo, src, dst)
                assert route_nodes(topo, src, route)[-1] == dst


class TestWraparound:
    def test_uses_wrap_when_strictly_shorter(self):
        topo = Torus(4)
        route = dimension_ordered_route(
            topo, topo.node_at(0, 0), topo.node_at(0, 3))
        assert route == [SOUTH, LOCAL]

    def test_avoid_wrap_keeps_two_hop_runs_off_wrap_edges(self):
        """The deadlock-freedom property: with avoid_wrap, no multi-hop
        straight run crosses a wraparound edge on a radix-4 torus, so
        intra-ring channel cycles cannot form."""
        topo = Torus(4)
        for src in range(16):
            for dst in range(16):
                if src == dst:
                    continue
                route = dimension_ordered_route(topo, src, dst,
                                                tie_break="avoid_wrap")
                nodes = route_nodes(topo, src, route)
                for dim in ("y", "x"):
                    in_dim = [(i, p) for i, p in enumerate(route[:-1])
                              if (p in (NORTH, SOUTH)) == (dim == "y")]
                    if len(in_dim) >= 2:
                        # A multi-hop run must stay off wrap edges.
                        for i, port in in_dim:
                            assert not topo.crosses_wrap_edge(
                                nodes[i], port), (src, dst, route)

    def test_even_tie_break_balances_directions(self):
        """Half the sources take each direction on equidistant pairs,
        preserving torus symmetry."""
        topo = Torus(4)
        directions = []
        for x in range(4):
            for y in range(4):
                src = topo.node_at(x, y)
                dst = topo.node_at(x, (y + 2) % 4)
                route = dimension_ordered_route(topo, src, dst,
                                                tie_break="even")
                directions.append(route[0])
        assert directions.count(NORTH) == 8
        assert directions.count(SOUTH) == 8

    def test_mesh_never_wraps(self):
        topo = Mesh(4)
        route = dimension_ordered_route(
            topo, topo.node_at(0, 0), topo.node_at(0, 3))
        assert route == [NORTH, NORTH, NORTH, LOCAL]


class TestRouteNodes:
    def test_node_sequence(self):
        topo = Torus(4)
        src = topo.node_at(1, 2)
        dst = topo.node_at(2, 3)
        route = dimension_ordered_route(topo, src, dst)
        nodes = route_nodes(topo, src, route)
        assert nodes[0] == src
        assert nodes[-1] == dst
        assert len(nodes) == route_hops(route) + 1
