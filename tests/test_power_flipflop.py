"""Unit tests for the flip-flop power subcomponent."""

import pytest

from repro.power import FlipFlopPower
from repro.tech import Technology


def ff(feature=0.1):
    return FlipFlopPower(Technology(feature, vdd=1.2, frequency_hz=2e9))


class TestFlipFlop:
    def test_clock_energy_paid_even_without_data_change(self):
        f = ff()
        assert f.write_energy(bit_changed=False) == pytest.approx(
            f.clock_energy)

    def test_data_flip_adds_internal_energy(self):
        f = ff()
        assert f.write_energy(bit_changed=True) == pytest.approx(
            f.clock_energy + f.data_switch_energy)

    def test_internal_cap_exceeds_clock_cap(self):
        # Four inverters plus pass drains outweigh four pass gates.
        f = ff()
        assert f.internal_cap > f.clock_cap

    def test_scales_with_feature_size(self):
        assert ff(0.07).data_switch_energy < ff(0.25).data_switch_energy

    def test_describe_is_complete(self):
        d = ff().describe()
        for key in ("internal_cap_f", "clock_cap_f",
                    "data_switch_energy_j", "clock_energy_j"):
            assert key in d
