"""Tests for the extension features: extra traffic patterns, bus-invert
link coding, and dateline deadlock avoidance on larger tori."""

import pytest

from repro import Orion, preset
from repro.core import events as ev
from repro.core.config import LinkConfig
from repro.power import BusInvertLinkPower, OnChipLinkPower
from repro.sim.network import Network
from repro.sim.topology import Torus
from repro.sim.traffic import (
    BurstyTraffic,
    ShuffleTraffic,
    TornadoTraffic,
    UniformRandomTraffic,
)
from repro.tech import Technology

from tests.conftest import small_config


def drain(pattern, cycles):
    pairs = []
    for c in range(cycles):
        pairs.extend(pattern.packets_at(c))
    return pairs


class TestTornado:
    def test_fixed_halfway_destinations(self):
        topo = Torus(4)
        pattern = TornadoTraffic(topo, rate=1.0, seed=3)
        for src, dst in drain(pattern, 5):
            sx, sy = topo.coords(src)
            dx, dy = topo.coords(dst)
            assert dx == (sx + 1) % 4
            assert dy == (sy + 1) % 4

    def test_rate_respected(self):
        pattern = TornadoTraffic(Torus(4), rate=0.1, seed=3)
        count = len(drain(pattern, 4000))
        assert count / (16 * 4000) == pytest.approx(0.1, rel=0.15)


class TestShuffle:
    def test_bit_rotation(self):
        topo = Torus(4)
        pattern = ShuffleTraffic(topo, rate=1.0, seed=3)
        for src, dst in drain(pattern, 3):
            expected = ((src << 1) | (src >> 3)) & 0xF
            assert dst == expected

    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            ShuffleTraffic(Torus(3, 4), rate=0.5)


class TestBursty:
    def test_average_rate_preserved(self):
        pattern = BurstyTraffic(Torus(4), rate=0.05, burst_length=10,
                                duty_cycle=0.25, seed=3)
        count = len(drain(pattern, 30000))
        assert count / (16 * 30000) == pytest.approx(0.05, rel=0.15)

    def test_burstier_than_uniform(self):
        """The ON/OFF modulation correlates arrivals over time, so
        injection counts aggregated over windows show a much higher
        variance than the memoryless Bernoulli process at equal rate
        (marginal per-cycle variance is identical by construction)."""
        def windowed_variance(pattern, window=20, cycles=40000):
            counts = []
            for start in range(0, cycles, window):
                total = 0
                for c in range(start, start + window):
                    total += len(pattern.packets_at(c))
                counts.append(total)
            mean = sum(counts) / len(counts)
            return sum((c - mean) ** 2 for c in counts) / len(counts)

        bursty = windowed_variance(
            BurstyTraffic(Torus(4), 0.05, burst_length=20,
                          duty_cycle=0.2, seed=3))
        uniform = windowed_variance(
            UniformRandomTraffic(Torus(4), 0.05, seed=3))
        assert bursty > 2.0 * uniform

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyTraffic(Torus(4), rate=0.5, duty_cycle=0.25)  # on-rate 2
        with pytest.raises(ValueError):
            BurstyTraffic(Torus(4), rate=0.1, burst_length=0.5)
        with pytest.raises(ValueError):
            BurstyTraffic(Torus(4), rate=0.1, duty_cycle=0.0)

    def test_end_to_end_delivery(self):
        net = Network(small_config("vc"))
        pattern = BurstyTraffic(net.topo, 0.05, seed=3)
        created = []
        for _ in range(400):
            for src, dst in pattern.packets_at(net.cycle):
                created.append(net.create_packet(src, dst, net.cycle))
            net.step()
        for _ in range(400):
            net.step()
        assert created
        assert all(p.eject_cycle is not None for p in created)


class TestBusInvert:
    def tech(self):
        return Technology(0.1, vdd=1.2, frequency_hz=2e9)

    def test_coded_never_worse_than_half_plus_one(self):
        link = BusInvertLinkPower(self.tech(), length_mm=3.0,
                                  width_bits=64)
        worst = link.traversal_energy(0, (1 << 64) - 1)
        assert worst == pytest.approx((0 + 1) * link.bit_energy)
        half = link.traversal_energy(0, (1 << 32) - 1)
        assert half <= (32 + 1) * link.bit_energy

    def test_average_mode_below_uncoded(self):
        plain = OnChipLinkPower(self.tech(), length_mm=3.0, width_bits=256)
        coded = BusInvertLinkPower(self.tech(), length_mm=3.0,
                                   width_bits=256)
        assert coded.traversal_energy() < plain.traversal_energy()
        # Theory: expected coded switches = W/2 - E|d - W/2| + 1.
        assert coded.expected_coded_switches < 128 + 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LinkConfig(kind="chip_to_chip", encoding="bus_invert")
        with pytest.raises(ValueError):
            LinkConfig(encoding="gray")

    def test_end_to_end_link_power_savings_on_inverted_data(self):
        """Simulated with payload tracking, bus-invert reduces link
        energy; every other component is untouched."""
        base = small_config("wormhole").with_(activity_mode="data")
        coded = base.with_(link=LinkConfig(kind="on_chip", length_mm=1.0,
                                           encoding="bus_invert"))
        def run(cfg):
            return Orion(cfg).run_uniform(0.05, warmup_cycles=200,
                                          sample_packets=150)
        plain_result = run(base)
        coded_result = run(coded)
        plain_b = plain_result.power_breakdown_w()
        coded_b = coded_result.power_breakdown_w()
        assert coded_b[ev.LINK] < plain_b[ev.LINK]
        assert coded_b[ev.INPUT_BUFFER] == pytest.approx(
            plain_b[ev.INPUT_BUFFER], rel=0.02)


class TestDatelineAtLargerRadix:
    def test_8x8_torus_dateline_delivers_under_load(self):
        """Radix-8 tori need dateline classes (avoid_wrap only covers
        radix <= 4); the VC router must deliver heavy traffic without
        deadlock."""
        cfg = small_config("vc", num_vcs=4,
                           vc_class_mode="dateline").with_(
            width=8, height=8, tie_break="even")
        net = Network(cfg)
        pattern = UniformRandomTraffic(net.topo, 0.10, seed=5)
        created = []
        for _ in range(300):
            for src, dst in pattern.packets_at(net.cycle):
                created.append(net.create_packet(src, dst, net.cycle))
            net.step()
        for _ in range(2500):
            net.step()
            if all(p.eject_cycle is not None for p in created):
                break
        net.audit()
        assert len(created) > 300
        assert all(p.eject_cycle is not None for p in created)
