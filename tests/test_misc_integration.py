"""Cross-cutting integration tests: feature combinations and plumbing
that individual modules' tests don't cover together."""

import pytest

from repro import Orion, preset
from repro.core import events as ev
from repro.core.config import LinkConfig
from repro.sim.network import Network
from repro.sim.routing import route_nodes
from repro.sim.topology import Torus

from tests.conftest import small_config


class TestEverythingOn:
    def test_all_extensions_together(self):
        """Data-mode activity + leakage + clock + bus-invert + monitor
        in one run: totals stay consistent and positive."""
        cfg = (preset("VC16")
               .with_(activity_mode="data",
                      include_leakage=True,
                      include_clock=True,
                      link=LinkConfig(kind="on_chip", length_mm=3.0,
                                      encoding="bus_invert")))
        from repro.sim.engine import Simulation
        from repro.sim.traffic import UniformRandomTraffic
        sim = Simulation(cfg, UniformRandomTraffic(Torus(4), 0.04,
                                                   seed=2),
                         warmup_cycles=150, sample_packets=80,
                         monitor=True)
        result = sim.run()
        breakdown = result.power_breakdown_w()
        assert breakdown[ev.CLOCK] > 0
        assert breakdown[ev.LINK] > 0
        assert sum(breakdown.values()) == pytest.approx(
            result.total_power_w)
        assert result.monitor.cycles == result.measured_cycles

    def test_speculative_router_with_dateline_on_8x8(self):
        cfg = small_config("vc", num_vcs=4,
                           vc_class_mode="dateline").with_(
            width=8, height=8, tie_break="even").with_router(
            kind="speculative_vc", num_vcs=4,
            vc_class_mode="dateline")
        net = Network(cfg)
        packets = [net.create_packet(i, (i + 27) % 64, 0)
                   for i in range(0, 64, 4)]
        for _ in range(2000):
            net.step()
            if all(p.eject_cycle is not None for p in packets):
                break
        net.audit()
        assert all(p.eject_cycle is not None for p in packets)


class TestTieBreakPlumbing:
    def test_network_routes_follow_configured_tie_break(self):
        """The NetworkConfig tie_break reaches route computation."""
        for tie in ("avoid_wrap", "even"):
            cfg = small_config("wormhole").with_(tie_break=tie)
            net = Network(cfg)
            topo = net.topo
            # A distance-2 tie along y from (2, 2): avoid_wrap must not
            # cross a wrap edge; even may.
            src = topo.node_at(2, 2)
            dst = topo.node_at(2, 0)
            packet = net.create_packet(src, dst, 0)
            nodes = route_nodes(topo, src, packet.route)
            wraps = any(
                topo.crosses_wrap_edge(nodes[i], port)
                for i, port in enumerate(packet.route[:-1])
            )
            if tie == "avoid_wrap":
                assert not wraps


class TestMeshEndToEnd:
    @pytest.mark.parametrize("kind", ["wormhole", "vc", "central"])
    def test_mesh_network_simulates(self, kind):
        cfg = small_config(kind).with_(topology="mesh")
        result = Orion(cfg).run_uniform(0.02, warmup_cycles=100,
                                        sample_packets=40)
        assert result.sample_packets == 40
        # Mesh corner routers own fewer links.
        assert min(r.out_degree
                   for r in Network(cfg).routers) == 2

    def test_mesh_longer_average_latency_than_torus(self):
        torus = Orion(small_config("wormhole")).run_uniform(
            0.02, warmup_cycles=150, sample_packets=120, seed=4)
        mesh = Orion(small_config("wormhole").with_(
            topology="mesh")).run_uniform(
            0.02, warmup_cycles=150, sample_packets=120, seed=4)
        assert mesh.avg_latency > torus.avg_latency


class TestActivityModesAgree:
    def test_data_mode_tracks_average_mode_at_scale(self):
        """Random payloads average to the F/2 expectation: the two
        activity modes agree within a few percent over many flits."""
        base = small_config("wormhole")
        avg = Orion(base).run_uniform(0.05, warmup_cycles=200,
                                      sample_packets=250, seed=6)
        data = Orion(base.with_(activity_mode="data")).run_uniform(
            0.05, warmup_cycles=200, sample_packets=250, seed=6)
        assert data.total_power_w == pytest.approx(avg.total_power_w,
                                                   rel=0.10)

    def test_event_counts_identical_across_modes(self):
        base = small_config("vc")
        avg = Orion(base).run_uniform(0.05, warmup_cycles=200,
                                      sample_packets=150, seed=6)
        data = Orion(base.with_(activity_mode="data")).run_uniform(
            0.05, warmup_cycles=200, sample_packets=150, seed=6)
        for event in (ev.BUFFER_WRITE, ev.BUFFER_READ,
                      ev.XBAR_TRAVERSAL, ev.LINK_TRAVERSAL):
            assert avg.accountant.event_count(event) == \
                data.accountant.event_count(event)


class TestEnergyBookkeeping:
    @pytest.mark.parametrize("kind", ["wormhole", "vc", "central"])
    def test_event_counts_scale_with_hops(self, kind):
        """Each flit does one buffer write per router visited and one
        link traversal per inter-router hop, so after a full drain
        ``writes - links == flits ejected``."""
        from repro.core.events import EnergyAccountant
        from repro.core.power_binding import PowerBinding
        cfg = small_config(kind)
        acc = EnergyAccountant(cfg.num_nodes)
        net = Network(cfg, PowerBinding(cfg, acc))
        packets = [net.create_packet(i % 16, (i * 7 + 3) % 16, 0)
                   for i in range(24) if i % 16 != (i * 7 + 3) % 16]
        for _ in range(800):
            net.step()
            if all(p.eject_cycle is not None for p in packets):
                break
        assert all(p.eject_cycle is not None for p in packets)
        writes = acc.event_count(ev.BUFFER_WRITE)
        links = acc.event_count(ev.LINK_TRAVERSAL)
        assert writes - links == net.flits_ejected
        # And reads match writes: every buffered flit leaves its buffer.
        assert acc.event_count(ev.BUFFER_READ) == writes
