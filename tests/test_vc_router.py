"""Behavioural tests for the virtual-channel router."""

import pytest

from repro.sim.network import Network
from repro.sim.stats import zero_load_latency_estimate
from repro.sim.topology import LOCAL, NORTH

from tests.conftest import small_config


def net(**kwargs):
    return Network(small_config("vc", **kwargs))


def deliver(network, src, dst, max_cycles=300):
    packet = network.create_packet(src=src, dst=dst, cycle=network.cycle)
    for _ in range(max_cycles):
        network.step()
        if packet.eject_cycle is not None:
            return packet
    raise AssertionError("packet not delivered")


class TestPipelineTiming:
    def test_zero_load_latency_matches_three_stage_model(self):
        """VA + SA + ST per hop plus 1-cycle links (Peh-Dally [15])."""
        network = net()
        topo = network.topo
        packet = deliver(network, topo.node_at(0, 0), topo.node_at(0, 2))
        expected = zero_load_latency_estimate(
            avg_hops=2, pipeline_stages=3,
            packet_length_flits=network.config.packet_length_flits)
        assert packet.latency == expected

    def test_vc_router_is_one_stage_deeper_than_wormhole(self):
        topo_src, topo_dst = (0, 0), (0, 2)
        vc_net = net()
        wh_net = Network(small_config("wormhole"))
        vc_lat = deliver(vc_net, vc_net.topo.node_at(*topo_src),
                         vc_net.topo.node_at(*topo_dst)).latency
        wh_lat = deliver(wh_net, wh_net.topo.node_at(*topo_src),
                         wh_net.topo.node_at(*topo_dst)).latency
        # One extra stage per hop (2 hops) + 1 at ejection router.
        assert vc_lat - wh_lat == 3


class TestVirtualChannels:
    def test_flits_carry_assigned_vc(self):
        network = net(num_vcs=2)
        topo = network.topo
        src, dst = topo.node_at(0, 0), topo.node_at(0, 1)
        seen_vcs = []
        dst_router = network.routers[dst]
        original = dst_router.accept_flit

        def spy(port, flit):
            seen_vcs.append(flit.vc)
            original(port, flit)

        dst_router.accept_flit = spy
        deliver(network, src, dst)
        assert len(seen_vcs) == network.config.packet_length_flits
        assert len(set(seen_vcs)) == 1  # whole packet on one VC
        assert all(0 <= v < 2 for v in seen_vcs)

    def test_two_packets_interleave_across_vcs(self):
        """The VC advantage: two packets share one physical link at flit
        granularity via different VCs."""
        network = net(num_vcs=2)
        topo = network.topo
        # Two packets from the same source to the same remote column.
        a = network.create_packet(src=topo.node_at(0, 0),
                                  dst=topo.node_at(0, 2), cycle=0)
        b = network.create_packet(src=topo.node_at(0, 0),
                                  dst=topo.node_at(0, 1), cycle=0)
        for _ in range(200):
            network.step()
        assert a.eject_cycle is not None and b.eject_cycle is not None
        # b (1 hop) must not wait for the whole of a (2 hops):
        # with a single FIFO it would eject strictly after a's tail
        # cleared the first link.
        assert b.eject_cycle <= a.eject_cycle

    def test_output_vc_released_at_tail(self):
        network = net(num_vcs=2)
        topo = network.topo
        src = topo.node_at(0, 0)
        deliver(network, src, topo.node_at(0, 2))
        for _ in range(10):
            network.step()
        router = network.routers[src]
        assert all(owner is None
                   for port in router.out_vc_owner for owner in port)

    def test_vc_credit_isolation(self):
        """Exhausting one VC's credits must not block the other VC."""
        network = net(num_vcs=2, buffer_depth=2)
        topo = network.topo
        packets = [network.create_packet(src=topo.node_at(0, 0),
                                         dst=topo.node_at(0, 2), cycle=0)
                   for _ in range(6)]
        for _ in range(500):
            network.step()
            network.audit()
        assert all(p.eject_cycle is not None for p in packets)


class TestDateline:
    def config(self):
        return small_config("vc", num_vcs=2,
                            vc_class_mode="dateline").with_(tie_break="even")

    def test_wrap_crossing_switches_vc_class(self):
        """Before the dateline a packet rides class 0; the hop after
        crossing the wraparound edge rides class 1."""
        network = Network(self.config())
        topo = network.topo
        # (1,3) has even parity, so the distance-2 tie goes north:
        # (1,3) -> wrap -> (1,0) -> (1,1).
        src = topo.node_at(1, 3)
        mid = topo.node_at(1, 0)
        dst = topo.node_at(1, 1)
        pre_wrap, post_wrap = [], []

        def spy(router, log):
            original = router.accept_flit

            def wrapped(port, flit):
                log.append(flit.vc)
                original(port, flit)
            router.accept_flit = wrapped

        spy(network.routers[mid], pre_wrap)
        spy(network.routers[dst], post_wrap)
        packet = network.create_packet(src=src, dst=dst, cycle=0)
        for _ in range(100):
            network.step()
        assert packet.eject_cycle is not None
        # Route sanity: two hops north through the wrap edge.
        assert packet.route[0] == NORTH and packet.route[1] == NORTH
        # Crossing hop requested pre-crossing: class 0 (vc 0 of 2).
        assert pre_wrap and all(v == 0 for v in pre_wrap)
        # Post-crossing hop: class 1 (vc 1 of 2).
        assert post_wrap and all(v == 1 for v in post_wrap)

    def test_dateline_network_delivers_under_load(self):
        network = Network(self.config())
        packets = []
        for i in range(30):
            src, dst = i % 16, (i * 5 + 3) % 16
            if src != dst:
                packets.append(network.create_packet(src, dst, 0))
        for _ in range(1500):
            network.step()
        assert all(p.eject_cycle is not None for p in packets)


class TestInjection:
    def test_packets_round_robin_across_injection_vcs(self):
        network = net(num_vcs=2)
        router = network.routers[0]
        for _ in range(2):
            network.create_packet(src=0, dst=4, cycle=0)
        for _ in range(8):
            network.step()
        # Two packets should have landed in different injection VCs.
        occupied = [len(vc.fifo) > 0 for vc in router.vcs[LOCAL]]
        # (They may have partially drained; check history via vc usage.)
        assert router._inject_rr in (0, 1)

    def test_body_flit_without_open_packet_rejected(self):
        network = net()
        packet = network.create_packet(src=0, dst=4, cycle=0)
        flits = list(network.source_queues[0])
        body = flits[1]
        network.source_queues[0].clear()
        with pytest.raises(RuntimeError):
            network.routers[0].inject_flit(body)
