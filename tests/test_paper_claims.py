"""Integration tests asserting the paper's qualitative claims at reduced
scale.

Each test runs the relevant experiment with fewer sample packets than the
paper's 10,000 (the benchmarks run the full-scale versions) and asserts
the *shape* of the result: who wins, what dominates, where the structure
lies.
"""

import pytest

from repro import Orion, preset
from repro.core import events as ev


def run(cfg, rate, sample=400, warmup=300, seed=1):
    return Orion(cfg).run_uniform(rate, warmup_cycles=warmup,
                                  sample_packets=sample, seed=seed)


class TestFigure5:
    """On-chip 4x4 torus: wormhole versus virtual-channel routers."""

    def test_vc16_saturates_at_paper_rate(self):
        """Section 4.2: VC16 saturates at ~0.15 packets/cycle/node."""
        sweep = Orion(preset("VC16")).sweep_uniform(
            [0.02, 0.13, 0.15, 0.17], warmup_cycles=400,
            sample_packets=500)
        sat = sweep.saturation_rate()
        assert sat is not None
        assert 0.13 <= sat <= 0.17

    def test_vc16_matches_wh64_with_quarter_buffering(self):
        """VC16 reaches WH64-class throughput with 16 versus 64 flits of
        buffering per port."""
        vc = Orion(preset("VC16")).sweep_uniform(
            [0.02, 0.13], warmup_cycles=400, sample_packets=500)
        wh = Orion(preset("WH64")).sweep_uniform(
            [0.02, 0.13], warmup_cycles=400, sample_packets=500)
        # Neither saturated at 0.13; latencies within the same band.
        assert vc.points[1].avg_latency < 2 * vc.points[0].avg_latency
        assert wh.points[1].avg_latency < 2 * wh.points[0].avg_latency

    def test_vc16_dissipates_less_power_than_wh64(self):
        """Figure 5(b): below saturation VC16 burns less power than
        WH64 at equal injection rate (quarter-size buffer arrays)."""
        vc = run(preset("VC16"), 0.08)
        wh = run(preset("WH64"), 0.08)
        assert vc.total_power_w < wh.total_power_w

    def test_vc64_power_tracks_wh64(self):
        """Figure 5(b): VC64 dissipates approximately the same power as
        WH64 — same physical buffering, negligible arbiter delta."""
        vc = run(preset("VC64"), 0.08, sample=300)
        wh = run(preset("WH64"), 0.08, sample=300)
        assert vc.total_power_w == pytest.approx(wh.total_power_w,
                                                 rel=0.10)

    def test_vc128_burns_more_power_for_no_gain_at_moderate_load(self):
        """Section 4.2: choosing VC128 over VC64 adds power without a
        matching performance improvement below saturation."""
        vc128 = run(preset("VC128"), 0.08, sample=300)
        vc64 = run(preset("VC64"), 0.08, sample=300)
        assert vc128.total_power_w > vc64.total_power_w
        assert vc128.avg_latency == pytest.approx(vc64.avg_latency,
                                                  rel=0.15)

    def test_power_levels_off_after_saturation(self):
        """Figure 5(b): total network power flattens beyond saturation
        because the network cannot absorb more traffic."""
        sweep = Orion(preset("VC16")).sweep_uniform(
            [0.17, 0.22], warmup_cycles=400, sample_packets=400)
        lo, hi = sweep.points[0].total_power_w, sweep.points[1].total_power_w
        assert hi < lo * 1.15

    def test_figure_5c_breakdown(self):
        """Figure 5(c): buffers + crossbar > 85% of node power, arbiter
        < 1%, links < 15% for the on-chip VC64 router."""
        result = run(preset("VC64"), 0.08, sample=300)
        breakdown = result.power_breakdown_w()
        total = sum(breakdown.values())
        datapath = breakdown[ev.INPUT_BUFFER] + breakdown[ev.CROSSBAR]
        assert datapath / total > 0.85
        assert breakdown[ev.ARBITER] / total < 0.01
        assert breakdown[ev.LINK] / total < 0.15


class TestFigure6:
    """Power spatial distribution: uniform versus broadcast."""

    def config(self):
        # VC router, 2 VCs x 8 flits (section 4.3), balanced routing.
        return preset("VC16").with_(tie_break="even")

    def test_uniform_traffic_is_spatially_flat(self):
        """Figure 6(a): uniform random traffic yields near-identical
        power at every node."""
        result = Orion(self.config()).run_uniform(
            0.2 / 16, warmup_cycles=500, sample_packets=250, seed=7)
        powers = result.node_power_w()
        mean = sum(powers) / len(powers)
        assert max(powers) < 1.35 * mean
        assert min(powers) > 0.65 * mean

    def test_broadcast_source_is_hottest(self):
        """Figure 6(b): the broadcasting node consumes the most power."""
        topo_source = 9  # (1, 2)
        result = Orion(self.config()).run_broadcast(
            topo_source, 0.2, warmup_cycles=500, sample_packets=250,
            seed=7)
        powers = result.node_power_w()
        assert powers[topo_source] == max(powers)

    def test_broadcast_power_decays_with_distance(self):
        """Figure 6(b): node power falls off quickly with Manhattan
        distance from the broadcast source."""
        from repro.sim.topology import Torus
        topo = Torus(4)
        source = topo.node_at(1, 2)
        result = Orion(self.config()).run_broadcast(
            source, 0.2, warmup_cycles=500, sample_packets=250, seed=7)
        powers = result.node_power_w()
        by_distance = {}
        for node, power in enumerate(powers):
            d = topo.manhattan_distance(source, node)
            by_distance.setdefault(d, []).append(power)
        means = {d: sum(v) / len(v) for d, v in by_distance.items()}
        assert means[0] > means[1] > means[2]

    def test_y_first_routing_heats_the_source_column(self):
        """Figure 6(b): with y-first routing from (1,2), the column
        neighbours (1,1) and (1,3) run hotter than the row neighbours
        (0,2) and (2,2)."""
        from repro.sim.topology import Torus
        topo = Torus(4)
        source = topo.node_at(1, 2)
        result = Orion(self.config()).run_broadcast(
            source, 0.2, warmup_cycles=500, sample_packets=250, seed=7)
        powers = result.node_power_w()
        column = powers[topo.node_at(1, 1)] + powers[topo.node_at(1, 3)]
        row = powers[topo.node_at(0, 2)] + powers[topo.node_at(2, 2)]
        assert column > row


class TestFigure7:
    """Chip-to-chip 4x4 torus: central-buffered versus crossbar routers."""

    def test_cb_saturates_before_xb_under_uniform_traffic(self):
        """Figure 7(a): the CB router's 2-port fabric limits uniform
        random throughput below the XB router's."""
        rates = [0.02, 0.10]
        cb = Orion(preset("CB")).sweep_uniform(
            rates, warmup_cycles=300, sample_packets=250)
        xb = Orion(preset("XB")).sweep_uniform(
            rates, warmup_cycles=300, sample_packets=250)
        cb_infl = cb.points[1].avg_latency / cb.points[0].avg_latency
        xb_infl = xb.points[1].avg_latency / xb.points[0].avg_latency
        assert cb_infl > xb_infl

    def test_cb_consumes_more_power_than_xb(self):
        """Figures 7(b)/(e): CB routers burn more power at equal load
        despite equal area (full-row central buffer accesses)."""
        cb = run(preset("CB"), 0.05, sample=250)
        xb = run(preset("XB"), 0.05, sample=250)
        assert cb.total_power_w > xb.total_power_w

    def test_figure_7c_xb_breakdown(self):
        """Figure 7(c): links > 70% of XB node power; arbiter and
        crossbar invisible."""
        result = run(preset("XB"), 0.05, sample=250)
        breakdown = result.power_breakdown_w()
        total = sum(breakdown.values())
        assert breakdown[ev.LINK] / total > 0.70
        assert breakdown[ev.ARBITER] / total < 0.01
        assert breakdown[ev.CROSSBAR] / total < 0.01
        # Among router components, input buffers dominate.
        assert breakdown[ev.INPUT_BUFFER] == max(
            breakdown[c] for c in (ev.INPUT_BUFFER, ev.CROSSBAR,
                                   ev.ARBITER, ev.CENTRAL_BUFFER))

    def test_figure_7f_cb_breakdown(self):
        """Figure 7(f): the central buffer dominates CB router power;
        arbiter and input buffers invisible."""
        result = run(preset("CB"), 0.05, sample=250)
        breakdown = result.power_breakdown_w()
        router_components = (ev.INPUT_BUFFER, ev.CENTRAL_BUFFER,
                             ev.CROSSBAR, ev.ARBITER)
        router_total = sum(breakdown[c] for c in router_components)
        assert breakdown[ev.CENTRAL_BUFFER] / router_total > 0.90
        assert breakdown[ev.ARBITER] / router_total < 0.01

    def test_chip_to_chip_link_power_is_load_invariant(self):
        """Section 4.4: differential chip-to-chip links burn the same
        power regardless of traffic."""
        light = run(preset("XB"), 0.02, sample=200)
        heavy = run(preset("XB"), 0.08, sample=200)
        assert light.power_breakdown_w()[ev.LINK] == pytest.approx(
            heavy.power_breakdown_w()[ev.LINK], rel=0.01)
        # On-chip links, by contrast, scale with load.
        light_oc = run(preset("VC16"), 0.02, sample=200)
        heavy_oc = run(preset("VC16"), 0.08, sample=200)
        assert heavy_oc.power_breakdown_w()[ev.LINK] > \
            2 * light_oc.power_breakdown_w()[ev.LINK]
