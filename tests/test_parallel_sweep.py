"""Tests for multiprocessing sweep execution."""

import pytest

from repro.core.orion import Orion

from tests.conftest import small_config


class TestParallelSweep:
    def test_matches_serial_results(self):
        orion = Orion(small_config("wormhole"))
        kwargs = dict(warmup_cycles=100, sample_packets=60, seed=3)
        serial = orion.sweep_uniform([0.02, 0.05], **kwargs)
        parallel = orion.sweep_uniform([0.02, 0.05], processes=2,
                                       **kwargs)
        assert parallel.rates == serial.rates
        for p, s in zip(parallel.points, serial.points):
            assert p.avg_latency == s.avg_latency
            assert p.total_power_w == pytest.approx(s.total_power_w)

    def test_broadcast_parallel(self):
        orion = Orion(small_config("vc"))
        sweep = orion.sweep_broadcast(9, [0.05, 0.10], processes=2,
                                      warmup_cycles=100,
                                      sample_packets=60)
        assert len(sweep.points) == 2
        assert all(p.avg_latency > 0 for p in sweep.points)

    def test_keep_results_across_processes(self):
        orion = Orion(small_config("wormhole"))
        sweep = orion.sweep_uniform([0.02], processes=2,
                                    warmup_cycles=100,
                                    sample_packets=40,
                                    keep_results=True)
        result = sweep.points[0].result
        assert result is not None
        assert result.accountant is not None
        assert result.total_power_w > 0

    def test_empty_rates_rejected(self):
        with pytest.raises(ValueError):
            Orion(small_config("wormhole")).sweep_uniform(
                [], processes=2)
