"""Unit tests for the arbiter power models (paper Table 4)."""

import pytest

from repro.power import (
    MatrixArbiterPower,
    MatrixCrossbarPower,
    QueuingArbiterPower,
    RoundRobinArbiterPower,
)
from repro.tech import Technology

ALL_KINDS = [MatrixArbiterPower, RoundRobinArbiterPower, QueuingArbiterPower]


def tech():
    return Technology(0.1, vdd=1.2, frequency_hz=2e9)


class TestMatrixArbiter:
    def test_priority_bits_count(self):
        # R(R-1)/2 priority flip-flops.
        assert MatrixArbiterPower(tech(), requesters=4).priority_bits == 6
        assert MatrixArbiterPower(tech(), requesters=8).priority_bits == 28

    def test_no_requests_costs_nothing(self):
        arb = MatrixArbiterPower(tech(), requesters=4)
        assert arb.arbitration_energy(0) == 0.0

    def test_grant_includes_grant_and_control_unfactored(self):
        """Per the Appendix: E_gnt and E_xb_ctr carry no activity factor
        because each arbitration grants exactly one request."""
        ctrl = 1e-12
        arb = MatrixArbiterPower(tech(), requesters=4,
                                 xbar_control_energy=ctrl)
        no_ctrl = MatrixArbiterPower(tech(), requesters=4)
        delta = arb.arbitration_energy(2) - no_ctrl.arbitration_energy(2)
        assert delta == pytest.approx(ctrl)

    def test_ungranted_round_skips_grant_energy(self):
        arb = MatrixArbiterPower(tech(), requesters=4,
                                 xbar_control_energy=1e-12)
        granted = arb.arbitration_energy(2, granted=True)
        idle = arb.arbitration_energy(2, granted=False)
        assert idle < granted

    def test_energy_grows_with_requests(self):
        arb = MatrixArbiterPower(tech(), requesters=8)
        assert arb.arbitration_energy(8) > arb.arbitration_energy(2)

    def test_explicit_changed_requests(self):
        arb = MatrixArbiterPower(tech(), requesters=4)
        more = arb.arbitration_energy(3, changed_requests=3)
        fewer = arb.arbitration_energy(3, changed_requests=0)
        assert more - fewer == pytest.approx(3 * arb.request_energy)

    def test_rejects_out_of_range_requests(self):
        arb = MatrixArbiterPower(tech(), requesters=4)
        with pytest.raises(ValueError):
            arb.arbitration_energy(5)
        with pytest.raises(ValueError):
            arb.arbitration_energy(-1)


class TestRoundRobinArbiter:
    def test_pointer_bits(self):
        assert RoundRobinArbiterPower(tech(), requesters=4).pointer_bits == 2
        assert RoundRobinArbiterPower(tech(), requesters=5).pointer_bits == 3
        assert RoundRobinArbiterPower(tech(), requesters=1).pointer_bits == 1

    def test_less_state_than_matrix_for_many_requesters(self):
        """A pointer is log R bits versus the matrix's R(R-1)/2 — grants
        update less state, so per-arbitration energy is lower."""
        rr = RoundRobinArbiterPower(tech(), requesters=16)
        mx = MatrixArbiterPower(tech(), requesters=16)
        assert rr.arbitration_energy(16) < mx.arbitration_energy(16)

    def test_no_requests_costs_nothing(self):
        assert RoundRobinArbiterPower(tech(), requesters=4) \
            .arbitration_energy(0) == 0.0


class TestQueuingArbiter:
    def test_token_width_is_log2(self):
        arb = QueuingArbiterPower(tech(), requesters=8)
        assert arb.queue.flit_bits == 3

    def test_built_on_fifo_buffer_model(self):
        """Hierarchical reuse (section 3.2): grant cost includes a queue
        read."""
        arb = QueuingArbiterPower(tech(), requesters=4)
        granted = arb.arbitration_energy(2, changed_requests=0)
        assert granted >= arb.queue.read_energy()

    def test_no_requests_costs_nothing(self):
        assert QueuingArbiterPower(tech(), requesters=4) \
            .arbitration_energy(0) == 0.0


class TestCommon:
    @pytest.mark.parametrize("cls", ALL_KINDS)
    def test_rejects_zero_requesters(self, cls):
        with pytest.raises(ValueError):
            cls(tech(), requesters=0)

    @pytest.mark.parametrize("cls", ALL_KINDS)
    def test_describe_reports_energy(self, cls):
        d = cls(tech(), requesters=4).describe()
        assert d["arbitration_energy_j"] > 0

    @pytest.mark.parametrize("cls", ALL_KINDS)
    def test_arbiter_is_negligible_versus_datapath(self, cls):
        """The paper's headline: arbiter power is < 1% of node power
        (Figure 5c).  Compare one arbitration against one 256-bit
        crossbar traversal."""
        t = tech()
        arb = cls(t, requesters=4)
        xbar = MatrixCrossbarPower(t, inputs=5, outputs=5, width_bits=256)
        assert arb.arbitration_energy(4) < 0.01 * xbar.traversal_energy()
