"""Unit tests for transistor sizing helpers."""

import pytest

from repro.tech import (
    Technology,
    default_width,
    driver_drain_cap,
    driver_total_cap,
    driver_width_for_load,
)
from repro.tech.sizing import DRIVER_STAGE_EFFORT, PMOS_TO_NMOS_RATIO


def tech():
    return Technology(0.1, vdd=1.2, frequency_hz=2e9)


class TestDefaultWidth:
    def test_matches_scaled_width(self):
        t = tech()
        assert default_width(t, "precharge") == t.scaled_width("precharge")


class TestDriverSizing:
    def test_gate_cap_tracks_effort(self):
        t = tech()
        load = 500e-15
        wn, wp = driver_width_for_load(t, load)
        gate = t.gate_cap(wn) + t.gate_cap(wp)
        assert gate == pytest.approx(load / DRIVER_STAGE_EFFORT, rel=1e-6)

    def test_pmos_to_nmos_ratio(self):
        t = tech()
        wn, wp = driver_width_for_load(t, 500e-15)
        assert wp == pytest.approx(PMOS_TO_NMOS_RATIO * wn)

    def test_minimum_width_for_tiny_load(self):
        t = tech()
        wn, wp = driver_width_for_load(t, 1e-18)
        assert wn >= t.feature_size_um
        assert wp >= t.feature_size_um

    def test_larger_load_larger_driver(self):
        t = tech()
        small = driver_width_for_load(t, 100e-15)
        large = driver_width_for_load(t, 1000e-15)
        assert large[0] > small[0]
        assert large[1] > small[1]

    def test_rejects_negative_load(self):
        with pytest.raises(ValueError):
            driver_width_for_load(tech(), -1e-15)

    def test_total_cap_exceeds_drain_cap(self):
        t = tech()
        assert driver_total_cap(t, 500e-15) > driver_drain_cap(t, 500e-15)

    def test_driver_cap_monotone_in_load(self):
        t = tech()
        assert driver_total_cap(t, 1000e-15) > driver_total_cap(t, 100e-15)
