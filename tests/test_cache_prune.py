"""Tests for ResultCache.prune / stats and the ``repro cache`` CLI.

A long-lived ``repro serve`` process writes into one shared cache
forever; prune is what keeps that directory bounded.  Eviction is LRU
by file mtime (least-recently-*stored*), so the tests backdate mtimes
with ``os.utime`` to build deterministic age ladders.
"""

import os
import time

import pytest

from repro.cli import main
from repro.exp.cache import ResultCache


def fill(cache, count, *, age_step_s=0.0, start="k"):
    """Store ``count`` entries; entry i is backdated ``i * age_step_s``
    seconds (entry 0 is the oldest).  Returns the keys, oldest first."""
    now = time.time()
    keys = []
    for index in range(count):
        key = f"{start}{index:02d}" + "0" * 12
        cache.store(key, {"value": index})
        if age_step_s:
            mtime = now - (count - 1 - index) * age_step_s
            os.utime(cache._path(key), (mtime, mtime))
        keys.append(key)
    return keys


class TestPrune:
    def test_no_criteria_is_noop(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        fill(cache, 3)
        assert cache.prune() == 0
        assert len(cache) == 3

    def test_max_age_drops_only_old_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        keys = fill(cache, 5, age_step_s=100.0)
        removed = cache.prune(max_age_s=250.0)
        assert removed == 2  # the two entries older than 250s
        assert len(cache) == 3
        for key in keys[:2]:
            assert cache.load(key) is None
        for key in keys[2:]:
            assert cache.load(key) == {"value": keys.index(key)}

    def test_max_entries_keeps_newest(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        keys = fill(cache, 6, age_step_s=10.0)
        assert cache.prune(max_entries=2) == 4
        assert len(cache) == 2
        assert cache.load(keys[-1]) is not None
        assert cache.load(keys[-2]) is not None
        assert cache.load(keys[0]) is None

    def test_lru_order_is_mtime_not_name(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        # Names sort one way, mtimes the other; mtime must win.
        newer = fill(cache, 2, age_step_s=0.0, start="a")
        older = fill(cache, 2, start="z")
        for key in older:
            path = cache._path(key)
            os.utime(path, (time.time() - 1000, time.time() - 1000))
        assert cache.prune(max_entries=2) == 2
        for key in newer:
            assert cache.load(key) is not None
        for key in older:
            assert cache.load(key) is None

    def test_both_criteria_compose(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        fill(cache, 6, age_step_s=100.0)
        # Age drops 2, then max_entries trims the surviving 4 to 3.
        assert cache.prune(max_age_s=350.0, max_entries=3) == 3
        assert len(cache) == 3

    def test_max_entries_zero_empties_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        fill(cache, 4)
        assert cache.prune(max_entries=0) == 4
        assert len(cache) == 0

    def test_negative_arguments_rejected(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        with pytest.raises(ValueError, match="max_age_s"):
            cache.prune(max_age_s=-1)
        with pytest.raises(ValueError, match="max_entries"):
            cache.prune(max_entries=-1)

    def test_missing_root_is_empty_noop(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert cache.prune(max_age_s=0.0) == 0


class TestStats:
    def test_empty_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        stats = cache.stats()
        assert stats["entries"] == 0
        assert stats["total_bytes"] == 0
        assert stats["oldest_age_s"] is None
        assert stats["newest_age_s"] is None
        assert stats["hit_rate"] == 0.0

    def test_counts_sizes_and_ages(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        keys = fill(cache, 3, age_step_s=50.0)
        cache.load(keys[0])          # hit
        cache.load("f" * 16)         # miss
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["total_bytes"] > 0
        assert stats["oldest_age_s"] >= 99.0
        assert stats["newest_age_s"] < 10.0
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["root"] == str(cache.root)


class TestCacheCli:
    def test_stats_command(self, tmp_path, capsys):
        cache = ResultCache(tmp_path / "c")
        fill(cache, 2)
        assert main(["cache", "stats",
                     "--cache-dir", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "2" in out

    def test_prune_requires_a_criterion(self, tmp_path, capsys):
        code = main(["cache", "prune", "--cache-dir", str(tmp_path / "c")])
        assert code == 2
        assert "--max-age-s" in capsys.readouterr().err

    def test_prune_by_entries(self, tmp_path, capsys):
        cache = ResultCache(tmp_path / "c")
        fill(cache, 5, age_step_s=10.0)
        assert main(["cache", "prune", "--cache-dir", str(tmp_path / "c"),
                     "--max-entries", "2"]) == 0
        assert "pruned 3" in capsys.readouterr().out
        assert len(ResultCache(tmp_path / "c")) == 2

    def test_prune_by_age(self, tmp_path, capsys):
        cache = ResultCache(tmp_path / "c")
        fill(cache, 4, age_step_s=1000.0)
        assert main(["cache", "prune", "--cache-dir", str(tmp_path / "c"),
                     "--max-age-s", "1500"]) == 0
        assert "pruned 2" in capsys.readouterr().out

    def test_clear_command(self, tmp_path, capsys):
        cache = ResultCache(tmp_path / "c")
        fill(cache, 3)
        assert main(["cache", "clear",
                     "--cache-dir", str(tmp_path / "c")]) == 0
        assert "cleared 3" in capsys.readouterr().out
        assert len(ResultCache(tmp_path / "c")) == 0

    def test_negative_prune_args_rejected_by_argparse(self, tmp_path,
                                                      capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["cache", "prune", "--cache-dir", str(tmp_path / "c"),
                  "--max-entries", "-1"])
        assert excinfo.value.code == 2
