"""Unit tests for torus/mesh topologies."""

import pytest

from repro.sim.topology import (
    EAST,
    LOCAL,
    NORTH,
    OPPOSITE,
    SOUTH,
    WEST,
    Mesh,
    Torus,
)


class TestCoordinates:
    def test_round_trip(self):
        topo = Torus(4)
        for node in range(topo.num_nodes):
            x, y = topo.coords(node)
            assert topo.node_at(x, y) == node

    def test_paper_labelling(self):
        # Figure 6 labels nodes as (x, y) tuples; node at (1, 2) exists.
        topo = Torus(4)
        node = topo.node_at(1, 2)
        assert topo.coords(node) == (1, 2)

    def test_rectangular(self):
        topo = Mesh(4, 2)
        assert topo.num_nodes == 8
        assert topo.coords(7) == (3, 1)

    def test_bounds_checked(self):
        topo = Torus(4)
        with pytest.raises(ValueError):
            topo.coords(16)
        with pytest.raises(ValueError):
            topo.node_at(4, 0)

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            Torus(1)


class TestTorusNeighbors:
    def test_interior_moves(self):
        topo = Torus(4)
        n = topo.node_at(1, 1)
        assert topo.coords(topo.neighbor(n, NORTH)) == (1, 2)
        assert topo.coords(topo.neighbor(n, SOUTH)) == (1, 0)
        assert topo.coords(topo.neighbor(n, EAST)) == (2, 1)
        assert topo.coords(topo.neighbor(n, WEST)) == (0, 1)

    def test_wraparound(self):
        topo = Torus(4)
        top = topo.node_at(2, 3)
        assert topo.coords(topo.neighbor(top, NORTH)) == (2, 0)
        left = topo.node_at(0, 1)
        assert topo.coords(topo.neighbor(left, WEST)) == (3, 1)

    def test_local_port_has_no_neighbor(self):
        topo = Torus(4)
        assert topo.neighbor(5, LOCAL) is None

    def test_every_node_has_four_links(self):
        topo = Torus(4)
        channels = list(topo.channels())
        assert len(channels) == 16 * 4
        out_degree = {}
        for src, port, dst in channels:
            out_degree[src] = out_degree.get(src, 0) + 1
        assert all(d == 4 for d in out_degree.values())

    def test_channels_are_symmetric(self):
        topo = Torus(4)
        pairs = {(src, dst) for src, _, dst in topo.channels()}
        assert all((dst, src) in pairs for src, dst in pairs)

    def test_opposite_ports(self):
        topo = Torus(4)
        for src, port, dst in topo.channels():
            assert topo.neighbor(dst, OPPOSITE[port]) == src


class TestMeshNeighbors:
    def test_edges_have_no_neighbor(self):
        topo = Mesh(4)
        corner = topo.node_at(0, 0)
        assert topo.neighbor(corner, SOUTH) is None
        assert topo.neighbor(corner, WEST) is None
        assert topo.neighbor(corner, NORTH) is not None

    def test_fewer_channels_than_torus(self):
        assert len(list(Mesh(4).channels())) < len(list(Torus(4).channels()))

    def test_mesh_never_crosses_wrap(self):
        topo = Mesh(4)
        for node in range(topo.num_nodes):
            for port in (NORTH, SOUTH, EAST, WEST):
                assert not topo.crosses_wrap_edge(node, port)


class TestWrapEdges:
    def test_wrap_edge_detection(self):
        topo = Torus(4)
        assert topo.crosses_wrap_edge(topo.node_at(0, 3), NORTH)
        assert topo.crosses_wrap_edge(topo.node_at(0, 0), SOUTH)
        assert topo.crosses_wrap_edge(topo.node_at(3, 0), EAST)
        assert topo.crosses_wrap_edge(topo.node_at(0, 0), WEST)
        assert not topo.crosses_wrap_edge(topo.node_at(1, 1), NORTH)

    def test_wrap_edges_count(self):
        topo = Torus(4)
        wraps = [1 for src, port, _ in topo.channels()
                 if topo.crosses_wrap_edge(src, port)]
        # One wrap edge per direction per row/column: 4 rows x 2 (E/W)
        # + 4 columns x 2 (N/S).
        assert sum(wraps) == 16


class TestDistance:
    def test_torus_uses_shorter_way_round(self):
        topo = Torus(4)
        a = topo.node_at(0, 0)
        b = topo.node_at(3, 0)
        assert topo.manhattan_distance(a, b) == 1

    def test_mesh_distance(self):
        topo = Mesh(4)
        a = topo.node_at(0, 0)
        b = topo.node_at(3, 3)
        assert topo.manhattan_distance(a, b) == 6

    def test_distance_symmetric(self):
        topo = Torus(4)
        for a in range(16):
            for b in range(16):
                assert topo.manhattan_distance(a, b) == \
                    topo.manhattan_distance(b, a)

    def test_torus_average_distance_is_two(self):
        """4x4 torus uniform traffic averages 2 hops — the basis of the
        section 4.2 load calculations."""
        topo = Torus(4)
        distances = [topo.manhattan_distance(a, b)
                     for a in range(16) for b in range(16) if a != b]
        assert sum(distances) / len(distances) == pytest.approx(
            32 / 15, rel=1e-9)
