"""Unit tests for latency statistics and the saturation criterion."""

import math

import pytest

from repro.sim.message import Packet
from repro.sim.stats import (
    LatencyStats,
    is_saturated,
    saturation_rate,
    zero_load_latency_estimate,
)


def done_packet(created, ejected):
    p = Packet(packet_id=0, src=0, dst=1, length_flits=5,
               creation_cycle=created, route=[4])
    p.eject_cycle = ejected
    return p


class TestLatencyStats:
    def test_average(self):
        stats = LatencyStats()
        stats.record(done_packet(0, 10))
        stats.record(done_packet(5, 25))
        assert stats.average == 15.0
        assert stats.count == 2

    def test_min_max(self):
        stats = LatencyStats()
        for created, ejected in [(0, 10), (0, 30), (0, 20)]:
            stats.record(done_packet(created, ejected))
        assert stats.minimum == 10
        assert stats.maximum == 30

    def test_percentile(self):
        stats = LatencyStats()
        for lat in range(1, 101):
            stats.record(done_packet(0, lat))
        assert stats.percentile(50) == 50.0
        assert stats.percentile(99) == 99.0
        assert stats.percentile(100) == 100.0

    def test_empty_stats_degrade_to_nan_with_warning(self):
        """A zero-packet sample must not crash a sweep point: the
        summary metrics record NaN (with a warning) instead."""
        stats = LatencyStats()
        for metric in ("average", "minimum", "maximum"):
            with pytest.warns(RuntimeWarning, match="no sample packets"):
                assert math.isnan(getattr(stats, metric))

    def test_empty_percentile_degrades_to_nan(self):
        with pytest.warns(RuntimeWarning, match="no sample packets"):
            assert math.isnan(LatencyStats().percentile(50))

    def test_empty_percentile_still_validates_range(self):
        with pytest.raises(ValueError):
            LatencyStats().percentile(150)

    def test_percentile_range_checked(self):
        stats = LatencyStats()
        stats.record(done_packet(0, 10))
        with pytest.raises(ValueError):
            stats.percentile(150)


class TestSaturation:
    def test_criterion_is_twice_zero_load(self):
        """The paper: saturation is when latency exceeds twice the
        zero-load latency."""
        assert not is_saturated(19.9, 10.0)
        assert not is_saturated(20.0, 10.0)
        assert is_saturated(20.1, 10.0)

    def test_rejects_bad_zero_load(self):
        with pytest.raises(ValueError):
            is_saturated(10.0, 0.0)

    def test_saturation_rate_finds_first_crossing(self):
        rates = [0.05, 0.10, 0.15, 0.20]
        lats = [10.0, 12.0, 25.0, 80.0]
        assert saturation_rate(rates, lats, 10.0) == 0.15

    def test_saturation_rate_none_when_stable(self):
        assert saturation_rate([0.05, 0.1], [10.0, 11.0], 10.0) is None

    def test_saturation_rate_handles_unsorted_input(self):
        rates = [0.20, 0.05, 0.15, 0.10]
        lats = [80.0, 10.0, 25.0, 12.0]
        assert saturation_rate(rates, lats, 10.0) == 0.15

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            saturation_rate([0.1], [1.0, 2.0], 10.0)

    def test_interpolation_between_samples(self):
        """The crossing of the 2x threshold is linearly interpolated
        between the bracketing samples."""
        rates = [0.05, 0.10, 0.15, 0.20]
        lats = [10.0, 12.0, 25.0, 80.0]
        # threshold 20 crossed between (0.10, 12) and (0.15, 25)
        expected = 0.10 + (20.0 - 12.0) / (25.0 - 12.0) * 0.05
        assert saturation_rate(rates, lats, 10.0, interpolate=True) == \
            pytest.approx(expected)

    def test_interpolation_exact_hit_lands_on_sample(self):
        """A sample exactly at the threshold (not saturated, by the
        strict criterion) is where interpolation places the crossing."""
        rates = [0.05, 0.10, 0.15]
        lats = [10.0, 20.0, 30.0]
        assert saturation_rate(rates, lats, 10.0, interpolate=True) == \
            pytest.approx(0.10)

    def test_interpolation_never_saturates_returns_none(self):
        assert saturation_rate([0.05, 0.10], [10.0, 11.0], 10.0,
                               interpolate=True) is None

    def test_interpolation_single_point_edge_cases(self):
        """One saturated sample with nothing below it returns its own
        rate; one unsaturated sample returns None."""
        assert saturation_rate([0.1], [25.0], 10.0, interpolate=True) == 0.1
        assert saturation_rate([0.1], [15.0], 10.0,
                               interpolate=True) is None

    def test_interpolation_default_off_keeps_first_crossing(self):
        rates = [0.05, 0.10, 0.15, 0.20]
        lats = [10.0, 12.0, 25.0, 80.0]
        assert saturation_rate(rates, lats, 10.0) == 0.15


class TestZeroLoadEstimate:
    def test_wormhole_formula(self):
        """2-stage pipeline, 1-cycle links, 2 hops, 5 flits:
        head = 2*(2+1) + 2 = 8, +4 serialization = 12."""
        assert zero_load_latency_estimate(2, 2, 5) == 12.0

    def test_vc_formula(self):
        """3-stage pipeline: head = 2*4 + 3 = 11, +4 = 15."""
        assert zero_load_latency_estimate(2, 3, 5) == 15.0

    def test_single_flit_packet_has_no_serialization(self):
        assert zero_load_latency_estimate(2, 2, 1) == 8.0
