"""Unit tests for area estimation (the section 4.4 fair-area method)."""

import pytest

from repro.power import (
    CentralBufferPower,
    FIFOBufferPower,
    MatrixCrossbarPower,
    MuxTreeCrossbarPower,
    area,
)
from repro.tech import Technology


def tech():
    return Technology(0.1, vdd=1.2, frequency_hz=1e9)


class TestPrimitives:
    def test_buffer_area_is_wordline_times_bitline(self):
        buf = FIFOBufferPower(tech(), depth_flits=64, flit_bits=32)
        assert area.buffer_area_um2(buf) == pytest.approx(
            buf.wordline_length_um * buf.bitline_length_um)

    def test_matrix_crossbar_area(self):
        xb = MatrixCrossbarPower(tech(), inputs=5, outputs=5, width_bits=32)
        assert area.crossbar_area_um2(xb) == pytest.approx(
            xb.input_line_length_um * xb.output_line_length_um)

    def test_mux_tree_is_denser_than_matrix(self):
        t = tech()
        mx = MatrixCrossbarPower(t, inputs=5, outputs=5, width_bits=32)
        mt = MuxTreeCrossbarPower(t, inputs=5, outputs=5, width_bits=32)
        assert area.crossbar_area_um2(mt) < area.crossbar_area_um2(mx)

    def test_unknown_model_rejected(self):
        with pytest.raises(TypeError):
            area.crossbar_area_um2(object())

    def test_area_grows_with_buffer_depth(self):
        small = FIFOBufferPower(tech(), depth_flits=16, flit_bits=32)
        big = FIFOBufferPower(tech(), depth_flits=256, flit_bits=32)
        assert area.buffer_area_um2(big) > area.buffer_area_um2(small)


class TestRouterAreas:
    def test_xb_router_counts_all_port_buffers(self):
        t = tech()
        buf = FIFOBufferPower(t, depth_flits=64, flit_bits=32)
        xb = MatrixCrossbarPower(t, inputs=5, outputs=5, width_bits=32)
        one = area.xb_router_area_um2(buf, xb, ports=5, buffers_per_port=1)
        two = area.xb_router_area_um2(buf, xb, ports=5, buffers_per_port=2)
        assert two - one == pytest.approx(5 * area.buffer_area_um2(buf))

    def test_cb_router_includes_central_and_input_buffers(self):
        t = tech()
        central = CentralBufferPower(t, rows=256, banks=4, flit_bits=32)
        buf = FIFOBufferPower(t, depth_flits=64, flit_bits=32)
        total = area.cb_router_area_um2(central, buf, ports=5)
        assert total == pytest.approx(
            area.central_buffer_area_um2(central)
            + 5 * area.buffer_area_um2(buf))

    def test_row_and_flit_access_have_similar_array_area(self):
        """Same storage -> same silicon, whether modelled as one wide
        array or per-bank arrays (within port-overhead differences)."""
        t = tech()
        row = CentralBufferPower(t, rows=256, banks=4, flit_bits=32,
                                 row_access=True)
        flat = CentralBufferPower(t, rows=256, banks=4, flit_bits=32,
                                  row_access=False)
        a_row = area.central_buffer_area_um2(row)
        a_flat = area.central_buffer_area_um2(flat)
        assert a_row == pytest.approx(a_flat, rel=0.25)

    def test_paper_cb_and_xb_configs_have_matching_area(self):
        """Section 4.4 chose CB and XB to 'take up roughly the same
        area'; the models should agree to within ~15%."""
        t = tech()
        xb_buf = FIFOBufferPower(t, depth_flits=16 * 268, flit_bits=32)
        xbar = MatrixCrossbarPower(t, inputs=5, outputs=5, width_bits=32)
        xb_area = area.xb_router_area_um2(xb_buf, xbar, ports=5)
        central = CentralBufferPower(t, rows=2560, banks=4, flit_bits=32)
        cb_buf = FIFOBufferPower(t, depth_flits=64, flit_bits=32)
        cb_area = area.cb_router_area_um2(central, cb_buf, ports=5)
        assert cb_area == pytest.approx(xb_area, rel=0.15)

    def test_rejects_bad_port_counts(self):
        t = tech()
        buf = FIFOBufferPower(t, depth_flits=4, flit_bits=8)
        xb = MatrixCrossbarPower(t, inputs=5, outputs=5, width_bits=8)
        with pytest.raises(ValueError):
            area.xb_router_area_um2(buf, xb, ports=0)
        with pytest.raises(ValueError):
            area.xb_router_area_um2(buf, xb, ports=5, buffers_per_port=0)
        central = CentralBufferPower(t, rows=16, banks=2, flit_bits=8)
        with pytest.raises(ValueError):
            area.cb_router_area_um2(central, buf, ports=0)
