"""Tests for the declarative traffic registry."""

import pytest

from repro.sim.topology import Torus, topology_for
from repro.sim.traffic import (
    TRAFFIC_REGISTRY,
    BroadcastTraffic,
    HotspotTraffic,
    UniformRandomTraffic,
    make_traffic,
    traffic_names,
    validate_traffic_params,
)

from tests.conftest import small_config

TOPO = Torus(4, 4)


class TestRegistryContents:
    def test_all_paper_patterns_registered(self):
        assert {"uniform", "broadcast", "transpose", "bitcomp", "hotspot",
                "neighbor", "tornado", "shuffle",
                "bursty"} <= set(traffic_names())

    def test_names_sorted(self):
        assert list(traffic_names()) == sorted(traffic_names())

    def test_per_node_flags(self):
        assert TRAFFIC_REGISTRY["uniform"].per_node
        assert not TRAFFIC_REGISTRY["broadcast"].per_node

    def test_every_kind_buildable(self):
        extras = {"broadcast": {"source": 0}, "hotspot": {"hotspot": 5}}
        for name in traffic_names():
            traffic = make_traffic(name, TOPO, 0.05, **extras.get(name, {}))
            # A built pattern must answer the engine's only question.
            packets = traffic.packets_at(0)
            assert isinstance(packets, list)

    def test_factory_types(self):
        assert isinstance(make_traffic("uniform", TOPO, 0.05),
                          UniformRandomTraffic)
        assert isinstance(make_traffic("broadcast", TOPO, 0.1, source=3),
                          BroadcastTraffic)


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown traffic"):
            make_traffic("teleport", TOPO, 0.05)

    def test_missing_required_param(self):
        with pytest.raises(ValueError, match="requires parameter 'source'"):
            make_traffic("broadcast", TOPO, 0.1)

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            make_traffic("uniform", TOPO, 0.05, hotness=3)

    def test_defaults_filled(self):
        resolved = validate_traffic_params("hotspot", {"hotspot": 5})
        assert resolved == {"hotspot": 5, "hot_fraction": 0.2}
        traffic = make_traffic("hotspot", TOPO, 0.05, hotspot=5)
        assert isinstance(traffic, HotspotTraffic)

    def test_default_overridable(self):
        resolved = validate_traffic_params(
            "hotspot", {"hotspot": 5, "hot_fraction": 0.5})
        assert resolved["hot_fraction"] == 0.5


class TestDeterminism:
    def test_seed_controls_stream(self):
        a = make_traffic("uniform", TOPO, 0.05, seed=3)
        b = make_traffic("uniform", TOPO, 0.05, seed=3)
        c = make_traffic("uniform", TOPO, 0.05, seed=4)
        stream = lambda t: [t.packets_at(cyc) for cyc in range(60)]
        assert stream(a) == stream(b)
        assert stream(a) != stream(c)

    def test_topology_for_matches_config(self):
        cfg = small_config("wormhole")
        topo = topology_for(cfg)
        assert (topo.width, topo.height) == (cfg.width, cfg.height)
