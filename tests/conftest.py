"""Shared fixtures: small, fast network configurations for simulator
tests."""

import pytest

from repro.core.config import (
    LinkConfig,
    NetworkConfig,
    RouterConfig,
    TechConfig,
)

SMALL_TECH = TechConfig(feature_size_um=0.1, vdd=1.2, frequency_hz=1e9)
SMALL_LINK = LinkConfig(kind="on_chip", length_mm=1.0)


def small_config(kind="wormhole", **router_kwargs) -> NetworkConfig:
    """A 4x4 torus with narrow flits and small buffers — fast to
    simulate, same code paths as the paper configs."""
    defaults = dict(kind=kind, flit_bits=16, buffer_depth=4)
    if kind == "vc":
        defaults.update(num_vcs=2, buffer_depth=4)
    if kind == "central":
        defaults.update(cb_rows=64, cb_banks=2, cb_read_ports=2,
                        cb_write_ports=2, buffer_depth=4)
    defaults.update(router_kwargs)
    return NetworkConfig(
        topology="torus", width=4, height=4,
        router=RouterConfig(**defaults),
        link=SMALL_LINK, tech=SMALL_TECH,
        packet_length_flits=3,
    )


@pytest.fixture
def wormhole_config():
    return small_config("wormhole")


@pytest.fixture
def vc_config():
    return small_config("vc")


@pytest.fixture
def central_config():
    return small_config("central")
