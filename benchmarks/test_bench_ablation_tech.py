"""Ablation: process-technology scaling.

Re-evaluates the section 3.3 walkthrough flit energy across process
nodes from 0.35 um to 0.07 um, separating the Vdd^2 contribution from
geometric shrink, and re-runs a small network simulation at two nodes to
show end-to-end power scaling.
"""

import pytest

from repro import Orion, preset
from repro.core.config import TechConfig

from conftest import SAMPLE, WARMUP

NODES = (0.35, 0.25, 0.18, 0.13, 0.10, 0.07)


def test_flit_energy_across_nodes(benchmark):
    def table():
        out = {}
        for feature in NODES:
            cfg = preset("WH64").with_(tech=TechConfig(
                feature_size_um=feature, vdd=_default_vdd(feature),
                frequency_hz=1e9))
            out[feature] = Orion(cfg).flit_energy_walkthrough()
        return out

    energies = benchmark(table)
    print("\n== Ablation: walkthrough E_flit across process nodes ==")
    print(f"{'node um':>8} {'Vdd V':>6} {'E_flit pJ':>12}")
    for feature in NODES:
        print(f"{feature:>8} {_default_vdd(feature):>6.2f} "
              f"{energies[feature]['E_flit'] * 1e12:>12.2f}")
    flits = [energies[f]["E_flit"] for f in NODES]
    # Energy falls monotonically with feature size (Vdd^2 + geometry).
    assert flits == sorted(flits, reverse=True)
    # 0.35 um -> 0.07 um shrinks per-flit energy by more than 10x.
    assert flits[0] > 10 * flits[-1]


def _default_vdd(feature):
    from repro.tech.constants import DEFAULT_VDD_BY_FEATURE
    key = min(DEFAULT_VDD_BY_FEATURE, key=lambda f: abs(f - feature))
    return DEFAULT_VDD_BY_FEATURE[key]


@pytest.mark.parametrize("feature,vdd", [(0.18, 1.8), (0.07, 1.0)])
def test_network_power_across_nodes(benchmark, feature, vdd):
    cfg = preset("VC16").with_(tech=TechConfig(
        feature_size_um=feature, vdd=vdd, frequency_hz=1e9))

    def run():
        return Orion(cfg).run_uniform(0.05, warmup_cycles=WARMUP,
                                      sample_packets=min(SAMPLE, 400))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n{feature} um @ {vdd} V, 1 GHz: "
          f"{result.total_power_w:.3f} W network power")
    assert result.total_power_w > 0
