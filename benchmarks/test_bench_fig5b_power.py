"""Figure 5(b): total network power versus injection rate for WH64,
VC16, VC64 and VC128 (on-chip 4x4 torus, uniform random traffic).

Paper shape: VC16 dissipates less power than WH64 at equal rate before
saturation; VC64 tracks WH64 closely (same physical buffering); VC128
sits above VC64; all curves level off past saturation.
"""

import pytest

from conftest import (
    FIG5_CONFIGS,
    FIG5_RATES,
    print_series,
    uniform_sweep,
)


def test_fig5b_report(benchmark):
    def collect():
        return {name: uniform_sweep(name, FIG5_RATES).powers
                for name in FIG5_CONFIGS}

    series = benchmark.pedantic(collect, rounds=1, iterations=1)
    print_series("Figure 5(b): total network power", FIG5_RATES, series,
                 unit="W")
    mid = FIG5_RATES.index(0.10)
    # VC16 below WH64 before saturation.
    assert series["VC16"][mid] < series["WH64"][mid]
    # VC64 approximately equal to WH64 (shared buffer geometry).
    assert series["VC64"][mid] == pytest.approx(series["WH64"][mid],
                                                rel=0.10)
    # VC128 above VC64 (larger buffer arrays).
    assert series["VC128"][mid] > series["VC64"][mid]
    # Power levels off past saturation.  VC16 is deep into saturation
    # by the last rate, so its curve must flatten clearly; the larger
    # configurations are still absorbing offered load at 0.17, so their
    # slopes need only stop growing.
    for name in FIG5_CONFIGS:
        powers = series[name]
        early_slope = (powers[1] - powers[0]) / (FIG5_RATES[1] -
                                                 FIG5_RATES[0])
        late_slope = (powers[-1] - powers[-2]) / (FIG5_RATES[-1] -
                                                  FIG5_RATES[-2])
        if name == "VC16":
            assert late_slope < 0.75 * early_slope
        else:
            assert late_slope < 1.3 * early_slope
