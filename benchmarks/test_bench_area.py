"""Section 4.4 fair-area check: the CB and XB configurations were chosen
to occupy "roughly the same area".

Regenerates the router-area estimates from the power models' line-length
equations (buffer wordlines/bitlines, crossbar input/output rails) and
asserts parity within 15%.
"""

from repro import Orion, preset
from repro.power import area


def _areas():
    xb = Orion(preset("XB")).power_models()
    cb = Orion(preset("CB")).power_models()
    xb_area = area.xb_router_area_um2(xb.buffer_model, xb.crossbar_model,
                                      ports=5)
    cb_area = area.cb_router_area_um2(cb.central_model, cb.buffer_model,
                                      ports=5)
    return xb_area, cb_area


def test_area_parity(benchmark):
    xb_area, cb_area = benchmark(_areas)
    print("\n== Section 4.4: router area parity ==")
    print(f"XB router: {xb_area / 1e6:8.3f} mm^2 "
          f"(16 VC x 268-flit buffers/port + 5x5 crossbar)")
    print(f"CB router: {cb_area / 1e6:8.3f} mm^2 "
          f"(4-bank x 2560-row central buffer + 64-flit input buffers)")
    print(f"CB / XB:   {cb_area / xb_area:8.3f}")
    assert abs(cb_area - xb_area) / xb_area < 0.15
