"""Ablation: packet length.

The paper fixes packets at 5 flits ("a head flit leading 4 data
flits").  This bench varies packet length at a fixed *flit* injection
rate: longer packets amortise per-packet overheads (route computation,
VC/switch acquisition) over more flits but serialise longer at the
destination.
"""

import pytest

from repro import Orion, preset

from conftest import SAMPLE, WARMUP

LENGTHS = (1, 3, 5, 9)
FLIT_RATE = 0.4  # flits/cycle/node, held constant across lengths


def test_packet_length_tradeoff(benchmark):
    def collect():
        results = {}
        for length in LENGTHS:
            cfg = preset("VC16").with_(packet_length_flits=length)
            rate = FLIT_RATE / length
            results[length] = Orion(cfg).run_uniform(
                rate, warmup_cycles=WARMUP,
                sample_packets=min(SAMPLE, 400))
        return results

    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    print("\n== Ablation: packet length at constant flit load ==")
    print(f"{'flits':>6} {'latency':>9} {'power':>9} {'thruput':>9}")
    for length, result in results.items():
        print(f"{length:>6} {result.avg_latency:>9.2f} "
              f"{result.total_power_w:>9.2f} "
              f"{result.throughput_flits_per_cycle:>9.2f}")
    # Longer packets take longer end-to-end (serialization) ...
    assert results[9].avg_latency > results[1].avg_latency
    # ... but power per delivered flit stays within a band: the
    # dominant per-flit datapath energies are length-independent.
    per_flit = {
        length: r.total_power_w / r.throughput_flits_per_cycle
        for length, r in results.items()
    }
    values = list(per_flit.values())
    assert max(values) < 1.6 * min(values)
