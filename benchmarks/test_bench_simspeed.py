"""Section 4.1 simulator-speed datum.

The paper reports "a system simulation speed of about 1000 simulation
cycles per second on a Pentium III 750 MHz" for the 59-module 4x4 torus
VC network.  This benchmark measures this reproduction's cycles/second
on the same configuration (VC routers, power accounting on), both in
average-activity and payload-tracking modes.
"""

from repro.core.events import EnergyAccountant
from repro.core.power_binding import PowerBinding
from repro.sim.network import Network
from repro.sim.traffic import UniformRandomTraffic
from repro import preset

CYCLES = 400


def _run_cycles(activity_mode):
    cfg = preset("VC16").with_(activity_mode=activity_mode)
    accountant = EnergyAccountant(cfg.num_nodes)
    network = Network(cfg, PowerBinding(cfg, accountant))
    traffic = UniformRandomTraffic(network.topo, 0.10, seed=3)

    def body():
        for _ in range(CYCLES):
            for src, dst in traffic.packets_at(network.cycle):
                network.create_packet(src, dst, network.cycle)
            network.step()

    return body


def test_simspeed_average_mode(benchmark):
    benchmark.pedantic(_run_cycles("average"), rounds=3, iterations=1)
    cps = CYCLES / benchmark.stats["mean"]
    print(f"\n== Simulation speed (average activity): "
          f"{cps:,.0f} cycles/s ==")
    assert cps > 100  # sanity: must beat the paper's 1983-era budget


def test_simspeed_data_mode(benchmark):
    benchmark.pedantic(_run_cycles("data"), rounds=3, iterations=1)
    cps = CYCLES / benchmark.stats["mean"]
    print(f"\n== Simulation speed (payload tracking): "
          f"{cps:,.0f} cycles/s ==")
    assert cps > 50
