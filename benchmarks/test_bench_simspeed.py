"""Section 4.1 simulator-speed datum, dense vs. sparse kernel.

The paper reports "a system simulation speed of about 1000 simulation
cycles per second on a Pentium III 750 MHz" for the 59-module 4x4 torus
VC network.  This benchmark measures this reproduction's cycles/second
on that configuration and on a 16x16 low-rate variant where the
event-sparse kernel's active-router scheduling pays off most (few
routers hold work per cycle), for both kernels with power accounting on.

Results land in ``BENCH_simspeed.json`` at the repo root, one
cycles-per-second figure per (case, kernel) plus the sparse/dense
speedup ratios — the artifact CI's benchmark-smoke job checks.

Timing uses best-of-N ``time.process_time`` over fresh networks rather
than pytest-benchmark, so the file runs under a bare pytest install
(CI's) and is insensitive to scheduler noise in shared containers.
"""

import json
import time
from pathlib import Path

import pytest

from repro import preset
from repro.core.events import EnergyAccountant
from repro.core.power_binding import CounterBinding, PowerBinding
from repro.sim.network import Network
from repro.sim.traffic import UniformRandomTraffic

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_simspeed.json"
ROUNDS = 3

#: (width, height, injection rate, cycles to simulate per round).
CASES = {
    "vc_4x4_rate0.10": (4, 4, 0.10, 400),
    "vc_16x16_rate0.02": (16, 16, 0.02, 120),
}

RESULTS = {}
EXTRAS = {}


def _make_network(kernel, activity_mode, width, height):
    cfg = preset("VC16").with_(width=width, height=height,
                               activity_mode=activity_mode)
    accountant = EnergyAccountant(cfg.num_nodes)
    # The pairing the engine ships: the sparse kernel defers
    # average-mode energy into event counters; data mode (and the dense
    # kernel) deposits per event.
    if kernel == "sparse" and activity_mode == "average":
        binding = CounterBinding(cfg, accountant)
    else:
        binding = PowerBinding(cfg, accountant)
    return Network(cfg, binding, kernel=kernel)


def _time_once(kernel, activity_mode, width, height, rate, cycles):
    network = _make_network(kernel, activity_mode, width, height)
    traffic = UniformRandomTraffic(network.topo, rate, seed=3)
    start = time.process_time()
    for _ in range(cycles):
        for src, dst in traffic.packets_at(network.cycle):
            network.create_packet(src, dst, network.cycle)
        network.step()
    return time.process_time() - start


def _cycles_per_second(kernel, activity_mode, width, height, rate, cycles):
    best = min(_time_once(kernel, activity_mode, width, height, rate,
                          cycles)
               for _ in range(ROUNDS))
    return cycles / best


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    payload = {
        "benchmark": "simspeed",
        "unit": "cycles/s",
        "rounds": ROUNDS,
        "cases": RESULTS,
    }
    for case, kernels in RESULTS.items():
        if "dense" in kernels and "sparse" in kernels:
            payload.setdefault("speedup_sparse_over_dense", {})[case] = (
                round(kernels["sparse"] / kernels["dense"], 3))
    payload.update(EXTRAS)
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n== wrote {OUTPUT.name}: "
          + ", ".join(f"{case} {k} {v:,.0f} c/s"
                      for case, ks in RESULTS.items()
                      for k, v in ks.items()) + " ==")


@pytest.mark.parametrize("kernel", ["dense", "sparse"])
@pytest.mark.parametrize("case", sorted(CASES))
def test_simspeed_average_mode(case, kernel):
    width, height, rate, cycles = CASES[case]
    cps = _cycles_per_second(kernel, "average", width, height, rate, cycles)
    RESULTS.setdefault(case, {})[kernel] = cps
    print(f"\n== {case} {kernel} kernel (average activity): "
          f"{cps:,.0f} cycles/s ==")
    assert cps > 50  # sanity: must beat the paper's 1983-era budget


@pytest.mark.parametrize("kernel", ["dense", "sparse"])
def test_simspeed_data_mode(kernel):
    # Payload tracking forfeits the counter fast path (per-flit Hamming
    # distances feed the switching models) but keeps active-router
    # scheduling; measured separately so the JSON shows both regimes.
    cps = _cycles_per_second(kernel, "data", 4, 4, 0.10, 300)
    RESULTS.setdefault("vc_4x4_rate0.10_data", {})[kernel] = cps
    print(f"\n== 4x4 {kernel} kernel (payload tracking): "
          f"{cps:,.0f} cycles/s ==")
    assert cps > 25


def test_sparse_not_slower_than_dense():
    """The CI gate: interleaved best-of-N pairs on the paper's 4x4
    operating point, so both kernels see the same machine conditions."""
    dense_best = float("inf")
    sparse_best = float("inf")
    for _ in range(4):
        dense_best = min(dense_best,
                         _time_once("dense", "average", 4, 4, 0.10, 300))
        sparse_best = min(sparse_best,
                          _time_once("sparse", "average", 4, 4, 0.10, 300))
    ratio = dense_best / sparse_best
    print(f"\n== sparse/dense speedup at 4x4 rate 0.10: {ratio:.2f}x ==")
    assert ratio >= 1.0


def _time_engine_once(telemetry_window):
    from repro.core.config import RunProtocol
    from repro.sim.engine import Simulation
    from repro.sim.topology import topology_for

    cfg = preset("VC16")
    protocol = RunProtocol(warmup_cycles=200, sample_packets=300, seed=3,
                           kernel="sparse",
                           telemetry_window=telemetry_window)
    traffic = UniformRandomTraffic(topology_for(cfg), 0.10, seed=3)
    sim = Simulation(cfg, traffic, protocol)
    start = time.process_time()
    sim.run()
    return time.process_time() - start


def test_telemetry_overhead_within_bound():
    """The CI gate: default-window telemetry (windowed snapshots plus
    engine phase spans) must cost at most ~5% wall clock on the flagship
    preset.  Interleaved best-of-N, same protocol both ways."""
    from repro.telemetry import DEFAULT_WINDOW

    off_best = on_best = float("inf")
    for _ in range(5):
        off_best = min(off_best, _time_engine_once(0))
        on_best = min(on_best, _time_engine_once(DEFAULT_WINDOW))
    ratio = on_best / off_best
    EXTRAS["telemetry_overhead_ratio"] = round(ratio, 3)
    print(f"\n== telemetry on/off runtime ratio at 4x4 rate 0.10: "
          f"{ratio:.3f} ==")
    assert ratio <= 1.05
