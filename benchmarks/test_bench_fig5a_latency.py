"""Figure 5(a): average packet latency versus injection rate for the
four on-chip configurations (WH64, VC16, VC64, VC128), uniform random
traffic on a 4x4 torus.

Paper shape: VC16 saturates at ~0.15 packets/cycle/node, at or beyond
WH64's saturation despite a quarter of the per-port buffering; VC64 and
VC128 saturate no earlier.
"""

import pytest

from conftest import (
    FIG5_CONFIGS,
    FIG5_RATES,
    print_series,
    uniform_sweep,
)


@pytest.mark.parametrize("name", FIG5_CONFIGS)
def test_fig5a_sweep(benchmark, name):
    sweep = benchmark.pedantic(
        uniform_sweep, args=(name, FIG5_RATES), rounds=1, iterations=1)
    assert len(sweep.points) == len(FIG5_RATES)
    assert all(p.avg_latency > 0 for p in sweep.points)
    # Latency is monotone in injection rate.
    assert sweep.latencies == sorted(sweep.latencies)


def test_fig5a_report(benchmark):
    def collect():
        return {name: uniform_sweep(name, FIG5_RATES).latencies
                for name in FIG5_CONFIGS}

    series = benchmark.pedantic(collect, rounds=1, iterations=1)
    print_series("Figure 5(a): average packet latency", FIG5_RATES,
                 series, unit="cycles")
    for name in FIG5_CONFIGS:
        sweep = uniform_sweep(name, FIG5_RATES)
        sat = sweep.saturation_rate()
        print(f"{name}: saturation "
              f"{'not reached' if sat is None else f'{sat:.3f}'}")
    vc16 = uniform_sweep("VC16", FIG5_RATES).saturation_rate()
    # The paper's headline: VC16 saturates around 0.15.
    assert vc16 is None or vc16 >= 0.13
