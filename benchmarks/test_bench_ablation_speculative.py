"""Ablation: speculative switch allocation (Peh-Dally architecture).

Compares the plain 3-stage VC router against the speculative 2-stage
variant at equal configuration: heads save one cycle per hop at low
load, throughput is preserved (speculation only fills idle crossbar
slots) and power is essentially unchanged.
"""

import pytest

from repro import Orion, preset

from conftest import SAMPLE, WARMUP

RATES = (0.02, 0.10, 0.15)


def _sweep(kind):
    cfg = preset("VC16")
    if kind == "speculative":
        cfg = cfg.with_router(kind="speculative_vc")
    return Orion(cfg).sweep_uniform(RATES, label=kind,
                                    warmup_cycles=WARMUP,
                                    sample_packets=min(SAMPLE, 500))


def test_speculative_vs_plain(benchmark):
    def both():
        return {kind: _sweep(kind) for kind in ("plain", "speculative")}

    sweeps = benchmark.pedantic(both, rounds=1, iterations=1)
    print("\n== Ablation: speculative VC router ==")
    print(f"{'rate':>8} {'plain lat':>10} {'spec lat':>10} "
          f"{'plain W':>9} {'spec W':>9}")
    for i, rate in enumerate(RATES):
        p = sweeps["plain"].points[i]
        s = sweeps["speculative"].points[i]
        print(f"{rate:>8.3f} {p.avg_latency:>10.2f} "
              f"{s.avg_latency:>10.2f} {p.total_power_w:>9.2f} "
              f"{s.total_power_w:>9.2f}")
    # One pipeline stage saved per router at low load: ~3 cycles over
    # an average 2-hop route plus ejection.
    low_gain = (sweeps["plain"].points[0].avg_latency
                - sweeps["speculative"].points[0].avg_latency)
    assert 2.0 <= low_gain <= 4.0
    # Speculation never hurts pre-saturation latency.
    for i in range(len(RATES) - 1):
        assert sweeps["speculative"].points[i].avg_latency <= \
            sweeps["plain"].points[i].avg_latency + 0.5
    # Power unchanged within 10% (same modules, same switching).
    for i in range(len(RATES)):
        assert sweeps["speculative"].points[i].total_power_w == \
            pytest.approx(sweeps["plain"].points[i].total_power_w,
                          rel=0.10)
