"""Shared infrastructure for the figure-regeneration benchmarks.

Each benchmark regenerates one panel of the paper's evaluation (Figures
5, 6 and 7, the section 3.3 walkthrough, the section 4.4 area check) and
prints the same rows/series the paper reports.  Absolute numbers differ
from the authors' testbed; the *shape* — who wins, by what factor, where
crossovers fall — is the reproduction target (see EXPERIMENTS.md).

Simulation scale: the paper uses a 1000-cycle warm-up and 10,000 sample
packets per point.  Benchmarks default to 600-packet samples so the full
harness runs in minutes; set ``REPRO_BENCH_SAMPLE=10000`` for
paper-scale runs.

Expensive sweeps are cached per pytest session, so the latency, power
and breakdown panels of one figure share a single set of simulations.
Sweeps run through the ``repro.exp`` orchestrator: set
``REPRO_BENCH_PROCS=N`` to fan rate points out over N worker processes
and ``REPRO_BENCH_CACHE=<dir>`` to persist results on disk across
sessions (paper-scale reruns then cost nothing).
"""

import os
from typing import Dict, Sequence, Tuple

import pytest

from repro import Orion, RunProtocol, preset
from repro.core.report import SweepResult
from repro.exp import ResultCache

SAMPLE = int(os.environ.get("REPRO_BENCH_SAMPLE", "600"))
WARMUP = int(os.environ.get("REPRO_BENCH_WARMUP", "500"))
PROCS = int(os.environ.get("REPRO_BENCH_PROCS", "1"))
PROTOCOL = RunProtocol(warmup_cycles=WARMUP, sample_packets=SAMPLE)

_cache_dir = os.environ.get("REPRO_BENCH_CACHE")
DISK_CACHE = ResultCache(_cache_dir) if _cache_dir else None

FIG5_RATES = (0.02, 0.06, 0.10, 0.13, 0.15, 0.17, 0.20)
FIG5_CONFIGS = ("WH64", "VC16", "VC64", "VC128")
FIG7_UNIFORM_RATES = (0.02, 0.05, 0.08, 0.11)
FIG7_BROADCAST_RATES = (0.05, 0.10, 0.15, 0.19)
FIG7_CONFIGS = ("XB", "CB")
BROADCAST_SOURCE = 9  # node (1, 2)

_sweep_cache: Dict[Tuple, SweepResult] = {}
_run_cache: Dict[Tuple, object] = {}


def uniform_sweep(name: str, rates: Sequence[float]) -> SweepResult:
    """Cached uniform-random sweep of a named preset."""
    key = ("uniform", name, tuple(rates), SAMPLE)
    if key not in _sweep_cache:
        _sweep_cache[key] = Orion(preset(name)).sweep_traffic(
            "uniform", rates, PROTOCOL, label=name,
            processes=PROCS, cache=DISK_CACHE)
    return _sweep_cache[key]


def broadcast_sweep(name: str, rates: Sequence[float]) -> SweepResult:
    """Cached broadcast sweep of a named preset."""
    key = ("broadcast", name, tuple(rates), SAMPLE)
    if key not in _sweep_cache:
        _sweep_cache[key] = Orion(preset(name)).sweep_traffic(
            "broadcast", rates, PROTOCOL, label=name,
            source=BROADCAST_SOURCE, processes=PROCS, cache=DISK_CACHE)
    return _sweep_cache[key]


def uniform_run(name: str, rate: float, **config_overrides):
    """Cached single uniform run of a (possibly modified) preset."""
    key = ("run", name, rate, SAMPLE, tuple(sorted(config_overrides.items())))
    if key not in _run_cache:
        cfg = preset(name)
        if config_overrides:
            cfg = cfg.with_(**config_overrides)
        _run_cache[key] = Orion(cfg).run_uniform(rate, PROTOCOL)
    return _run_cache[key]


def print_series(title: str, rates: Sequence[float],
                 series: Dict[str, Sequence[float]],
                 unit: str = "") -> None:
    """Print one figure panel as aligned rows (rate + one column per
    configuration)."""
    print(f"\n== {title} ==")
    labels = list(series)
    print(f"{'rate':>8}" + "".join(f"{label:>12}" for label in labels))
    for i, rate in enumerate(rates):
        row = f"{rate:>8.3f}"
        for label in labels:
            row += f"{series[label][i]:>12.2f}"
        print(row + (f"  [{unit}]" if unit and i == 0 else ""))
