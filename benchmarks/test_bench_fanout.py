"""Grid fan-out throughput: warm persistent pool vs cold per-call pools.

The experiment orchestrator used to pay process spawn + simulation
construction for every ``run_points`` call (a throwaway
``multiprocessing.Pool``), and per *point* when a timeout was set.  The
warm :class:`repro.exp.WorkerPool` amortises both: workers fork once
and a worker-side context cache reuses the constructed network graph
across points that differ only in rate/seed/traffic.

This benchmark drives the serve-style fan-out shape — a 24-point grid
arriving as 24 independent single-point calls — two ways:

* **cold**: a fresh 2-worker pool per call, closed after (every point
  pays fork + pipe setup + full simulation construction);
* **warm**: one persistent 2-worker pool across all 24 calls
  (construction paid once per worker, then ``Network.reset()`` reuse).

Points/sec for both, the warm/cold speedup, and a ``bit_identical``
verdict against single-process serial execution (latency and flit
counts exactly equal, energy within 1e-12 relative) land in
``BENCH_fanout.json`` — the artifact CI's fanout-smoke job gates on
(warm >= cold).
"""

import json
import math
import time
from pathlib import Path

import pytest

from repro import preset
from repro.core.config import RunProtocol
from repro.exp import RunPoint, TrafficSpec, WorkerPool, run_points

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_fanout.json"

#: One structural configuration (8x8 VC torus: construction-heavy
#: relative to the short measured run) fanned out over rate x seed.
GRID_CONFIG = preset("VC16").with_(width=8, height=8)
PROTOCOL_KWARGS = dict(warmup_cycles=100, sample_packets=30)
RATES = (0.02, 0.04)
SEEDS = tuple(range(1, 13))
POOL_WORKERS = 2

RESULTS = {}


def _grid():
    return [RunPoint(config=GRID_CONFIG, traffic=TrafficSpec.of("uniform"),
                     rate=rate,
                     protocol=RunProtocol(seed=seed, **PROTOCOL_KWARGS),
                     label="fanout")
            for rate in RATES for seed in SEEDS]


def _run_cold(points):
    """One fresh pool per single-point call — the seed's per-call cost
    model, in the shape the job service fans work out."""
    outcomes = []
    start = time.perf_counter()
    for point in points:
        pool = WorkerPool(POOL_WORKERS)
        try:
            outcomes.extend(run_points([point], processes=POOL_WORKERS,
                                       pool=pool))
        finally:
            pool.close()
    return time.perf_counter() - start, outcomes


def _run_warm(points):
    """One persistent pool across every call."""
    pool = WorkerPool(POOL_WORKERS)
    outcomes = []
    try:
        # Warm the workers (fork + first construction) outside the
        # measured window: steady-state throughput is the figure a
        # long-lived server sees.
        run_points(points[:POOL_WORKERS], processes=POOL_WORKERS, pool=pool)
        start = time.perf_counter()
        for point in points:
            outcomes.extend(run_points([point], processes=POOL_WORKERS,
                                       pool=pool))
        elapsed = time.perf_counter() - start
    finally:
        pool.close()
    return elapsed, outcomes


def _identical(serial, pooled):
    for left, right in zip(serial, pooled):
        if (left.status, left.avg_latency, left.total_cycles,
                left.throughput_flits_per_cycle, left.flits_dropped) != \
                (right.status, right.avg_latency, right.total_cycles,
                 right.throughput_flits_per_cycle, right.flits_dropped):
            return False
        if not math.isclose(left.total_power_w, right.total_power_w,
                            rel_tol=1e-12, abs_tol=0.0):
            return False
        for component, watts in left.breakdown_w.items():
            if not math.isclose(right.breakdown_w[component], watts,
                                rel_tol=1e-12, abs_tol=0.0):
                return False
    return True


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    if RESULTS:
        OUTPUT.write_text(json.dumps(RESULTS, indent=2, sort_keys=True)
                          + "\n")
        print(f"\n== wrote {OUTPUT.name}: "
              f"warm {RESULTS['warm_points_per_sec']:.1f} pts/s vs "
              f"cold {RESULTS['cold_points_per_sec']:.1f} pts/s "
              f"({RESULTS['warm_speedup']:.2f}x, bit_identical="
              f"{RESULTS['bit_identical']}) ==")


def test_fanout_warm_pool_outpaces_cold(tmp_path):
    points = _grid()
    serial = run_points(points, processes=1)
    cold_s, cold_outcomes = _run_cold(points)
    warm_s, warm_outcomes = _run_warm(points)
    n = len(points)
    RESULTS.update({
        "benchmark": "fanout",
        "unit": "points/s",
        "grid_points": n,
        "pool_workers": POOL_WORKERS,
        "cold_points_per_sec": round(n / cold_s, 3),
        "warm_points_per_sec": round(n / warm_s, 3),
        "warm_speedup": round(cold_s / warm_s, 3),
        "bit_identical": (_identical(serial, cold_outcomes)
                          and _identical(serial, warm_outcomes)),
    })
    assert all(o.status == "ok" for o in serial)
    assert RESULTS["bit_identical"], \
        "pool outcomes diverged from serial execution"
    # The CI gate: a warm pool must never be slower than paying
    # spawn + construction per call.  (Typical speedups are well past
    # the 1.5x target; the hard floor keeps the gate noise-proof.)
    assert RESULTS["warm_speedup"] >= 1.0
