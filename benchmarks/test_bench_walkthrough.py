"""Section 3.3 walkthrough: per-flit energy through a wormhole router.

Regenerates ``E_flit = E_wrt + E_arb + E_read + E_xb + E_link`` for the
walkthrough router (5 ports, 4-flit buffers, 32-bit flits, 5x5 crossbar,
4:1 arbiters) and benchmarks the power-model evaluation itself — the
hot path every simulation event takes.
"""

from repro import Orion
from repro.core.presets import walkthrough_router


def test_walkthrough_flit_energy(benchmark):
    orion = Orion(walkthrough_router())
    energies = benchmark(orion.flit_energy_walkthrough)
    print("\n== Section 3.3: head flit energy decomposition ==")
    for name, joules in energies.items():
        print(f"  {name:<8} {joules * 1e12:10.4f} pJ")
    parts = ("E_wrt", "E_arb", "E_read", "E_xb", "E_link")
    assert abs(energies["E_flit"] - sum(energies[p] for p in parts)) < 1e-18
    assert energies["E_arb"] < 0.01 * energies["E_flit"]


def test_event_energy_lookup(benchmark):
    """Per-event energy deposit — the inner loop of power simulation."""
    orion = Orion(walkthrough_router())
    binding = orion.power_models()

    def one_flit_of_events():
        binding.buffer_write(0, 0, None)
        binding.arbitration(0, "switch", 2)
        binding.buffer_read(0)
        binding.xbar_traversal(0, 1, None)
        binding.link_traversal(0, 1, None)

    benchmark(one_flit_of_events)
