"""Figure 6: power spatial distribution under uniform versus broadcast
traffic (on-chip 4x4 torus, VC routers with 2 VCs x 8 flits).

Paper shape: (a) uniform random traffic at 0.2/16 per node gives a flat
distribution; (b) broadcast from node (1,2) at 0.2 makes the source the
hottest node, power decaying quickly with Manhattan distance, with the
y-first routing heating (1,1)/(1,3) above (0,2)/(2,2) and same-x nodes
matching.
"""

import pytest

from repro import Orion, preset
from repro.core.report import spatial_table
from repro.sim.topology import Torus

from conftest import SAMPLE, WARMUP

TOTAL_RATE = 0.2


def config():
    # Balanced tie-breaks preserve torus symmetry for the spatial study.
    return preset("VC16").with_(tie_break="even")


def run_uniform():
    return Orion(config()).run_uniform(TOTAL_RATE / 16,
                                       warmup_cycles=WARMUP,
                                       sample_packets=SAMPLE, seed=7)


def run_broadcast():
    return Orion(config()).run_broadcast(9, TOTAL_RATE,
                                         warmup_cycles=WARMUP,
                                         sample_packets=SAMPLE, seed=7)


def test_fig6a_uniform_spatial(benchmark):
    result = benchmark.pedantic(run_uniform, rounds=1, iterations=1)
    print("\n== Figure 6(a): node power, uniform random 0.2/16 ==")
    print(spatial_table(result))
    powers = result.node_power_w()
    mean = sum(powers) / len(powers)
    print(f"max/mean {max(powers) / mean:.3f}, min/mean "
          f"{min(powers) / mean:.3f}")
    assert max(powers) < 1.4 * mean
    assert min(powers) > 0.6 * mean


def test_fig6b_broadcast_spatial(benchmark):
    result = benchmark.pedantic(run_broadcast, rounds=1, iterations=1)
    print("\n== Figure 6(b): node power, broadcast from (1,2) at 0.2 ==")
    print(spatial_table(result))
    topo = Torus(4)
    source = topo.node_at(1, 2)
    powers = result.node_power_w()
    assert powers[source] == max(powers)
    by_distance = {}
    for node, power in enumerate(powers):
        d = topo.manhattan_distance(source, node)
        by_distance.setdefault(d, []).append(power)
    means = {d: sum(v) / len(v) for d, v in by_distance.items()}
    print("power vs Manhattan distance: " + ", ".join(
        f"d={d}: {means[d] * 1e3:.1f} mW" for d in sorted(means)))
    # Power decays quickly with distance from the source.
    assert means[0] > means[1] > means[2]
    # Y-first routing: column neighbours hotter than row neighbours.
    column = powers[topo.node_at(1, 1)] + powers[topo.node_at(1, 3)]
    row = powers[topo.node_at(0, 2)] + powers[topo.node_at(2, 2)]
    assert column > row
