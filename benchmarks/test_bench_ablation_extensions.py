"""Ablation benches for the power-model extensions: bus-invert link
coding, static (leakage) power, and the occupancy monitor's view of
saturation."""

import pytest

from repro import Orion, preset
from repro.core import events as ev
from repro.core.config import LinkConfig
from repro.sim.engine import Simulation
from repro.sim.topology import Torus
from repro.sim.traffic import UniformRandomTraffic

from conftest import SAMPLE, WARMUP


def test_bus_invert_link_saving(benchmark):
    """Bus-invert coding trims link energy under payload-tracked
    simulation (savings scale with sqrt(W) on random data)."""
    def both():
        base = preset("VC16").with_(activity_mode="data")
        coded = base.with_(link=LinkConfig(kind="on_chip", length_mm=3.0,
                                           encoding="bus_invert"))
        out = {}
        for label, cfg in (("uncoded", base), ("bus_invert", coded)):
            out[label] = Orion(cfg).run_uniform(
                0.08, warmup_cycles=WARMUP,
                sample_packets=min(SAMPLE, 400))
        return out

    results = benchmark.pedantic(both, rounds=1, iterations=1)
    plain = results["uncoded"].power_breakdown_w()[ev.LINK]
    coded = results["bus_invert"].power_breakdown_w()[ev.LINK]
    saving = 1 - coded / plain
    print(f"\n== Bus-invert links: {plain:.3f} W -> {coded:.3f} W "
          f"({saving:.1%} saving on random payloads) ==")
    assert 0.01 < saving < 0.10  # sqrt(256)-ish on random data


def test_leakage_floor(benchmark):
    """Static power adds a rate-independent floor (Butts-Sohi model)."""
    def run(include_leakage, rate):
        cfg = preset("VC16")
        if include_leakage:
            cfg = cfg.with_(include_leakage=True)
        return Orion(cfg).run_uniform(rate, warmup_cycles=WARMUP,
                                      sample_packets=min(SAMPLE, 300))

    def collect():
        return {
            (leak, rate): run(leak, rate).total_power_w
            for leak in (False, True)
            for rate in (0.02, 0.10)
        }

    powers = benchmark.pedantic(collect, rounds=1, iterations=1)
    static_low = powers[(True, 0.02)] - powers[(False, 0.02)]
    static_high = powers[(True, 0.10)] - powers[(False, 0.10)]
    print(f"\n== Leakage floor: +{static_low:.3f} W at rate 0.02, "
          f"+{static_high:.3f} W at rate 0.10 ==")
    assert static_low > 0
    assert static_low == pytest.approx(static_high, rel=0.05)


def test_channel_utilization_tracks_saturation(benchmark):
    """The occupancy monitor's bottleneck-channel utilization approaches
    1.0 as the network saturates — the physical mechanism behind the
    latency knees of Figures 5 and 7."""
    def run(rate):
        cfg = preset("VC16")
        traffic = UniformRandomTraffic(Torus(4), rate, seed=3)
        return Simulation(cfg, traffic, warmup_cycles=WARMUP,
                          sample_packets=min(SAMPLE, 400),
                          monitor=True).run()

    def collect():
        return {rate: run(rate) for rate in (0.05, 0.17)}

    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    print("\n== Channel utilization vs injection rate ==")
    for rate, result in results.items():
        monitor = result.monitor
        print(f"rate {rate}: mean "
              f"{monitor.mean_channel_utilization():.3f}, max "
              f"{monitor.max_channel_utilization():.3f}, hottest "
              f"{monitor.hottest_channels(1)[0]}")
    # The bottleneck channel runs ~3x hotter past the knee; it tops out
    # below 1.0 because allocator inefficiency, not raw link bandwidth,
    # sets the saturation point.
    assert results[0.17].monitor.max_channel_utilization() > 0.7
    assert results[0.05].monitor.max_channel_utilization() < 0.5
