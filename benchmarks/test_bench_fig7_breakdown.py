"""Figures 7(c) and 7(f): XB and CB per-node power breakdowns
(chip-to-chip 4x4 torus, uniform random traffic).

Paper shape: (c) XB — links take more than 70% of node power; among
router components the input buffers dominate while arbiter and crossbar
are invisible.  (f) CB — the central buffer dominates router power;
arbiter and input buffers are invisible.
"""

from repro.core import events as ev

from conftest import FIG7_UNIFORM_RATES, print_series, uniform_sweep

COMPONENTS = (ev.INPUT_BUFFER, ev.CENTRAL_BUFFER, ev.CROSSBAR,
              ev.ARBITER, ev.LINK)


def _print_breakdown(title, sweep):
    print(f"\n== {title} ==")
    print(f"{'rate':>8}" + "".join(f"{c:>15}" for c in COMPONENTS))
    for point in sweep.points:
        row = f"{point.rate:>8.3f}"
        for component in COMPONENTS:
            row += f"{point.breakdown_w[component]:>15.3f}"
        print(row)


def test_fig7c_xb_breakdown(benchmark):
    sweep = benchmark.pedantic(
        uniform_sweep, args=("XB", FIG7_UNIFORM_RATES), rounds=1,
        iterations=1)
    _print_breakdown("Figure 7(c): XB power breakdown (W)", sweep)
    for point in sweep.points:
        b = point.breakdown_w
        total = sum(b.values())
        assert b[ev.LINK] / total > 0.70, point.rate
        assert b[ev.ARBITER] / total < 0.01, point.rate
        assert b[ev.CROSSBAR] / total < 0.01, point.rate
        router = (b[ev.INPUT_BUFFER] + b[ev.CROSSBAR] + b[ev.ARBITER]
                  + b[ev.CENTRAL_BUFFER])
        assert b[ev.INPUT_BUFFER] / router > 0.9, point.rate


def test_fig7f_cb_breakdown(benchmark):
    sweep = benchmark.pedantic(
        uniform_sweep, args=("CB", FIG7_UNIFORM_RATES), rounds=1,
        iterations=1)
    _print_breakdown("Figure 7(f): CB power breakdown (W)", sweep)
    for point in sweep.points:
        b = point.breakdown_w
        router = (b[ev.INPUT_BUFFER] + b[ev.CROSSBAR] + b[ev.ARBITER]
                  + b[ev.CENTRAL_BUFFER])
        assert b[ev.CENTRAL_BUFFER] / router > 0.90, point.rate
        assert b[ev.ARBITER] / router < 0.01, point.rate
        assert b[ev.INPUT_BUFFER] / router < 0.10, point.rate
