"""Figures 7(a) and 7(d): CB versus XB packet latency on a chip-to-chip
4x4 torus, under uniform random and broadcast traffic.

Paper shape: (a) under uniform random traffic the CB router's two-port
shared-memory fabric saturates before the XB router's five-port
crossbar; (d) under broadcast traffic the CB router is competitive —
its central queue removes the head-of-line blocking that penalises
input FIFOs.
"""

import pytest

from conftest import (
    FIG7_BROADCAST_RATES,
    FIG7_CONFIGS,
    FIG7_UNIFORM_RATES,
    broadcast_sweep,
    print_series,
    uniform_sweep,
)


@pytest.mark.parametrize("name", FIG7_CONFIGS)
def test_fig7a_uniform_sweep(benchmark, name):
    sweep = benchmark.pedantic(
        uniform_sweep, args=(name, FIG7_UNIFORM_RATES), rounds=1,
        iterations=1)
    assert sweep.latencies == sorted(sweep.latencies)


def test_fig7a_report(benchmark):
    def collect():
        return {name: uniform_sweep(name, FIG7_UNIFORM_RATES).latencies
                for name in FIG7_CONFIGS}

    series = benchmark.pedantic(collect, rounds=1, iterations=1)
    print_series("Figure 7(a): latency, uniform random",
                 FIG7_UNIFORM_RATES, series, unit="cycles")
    # CB's latency inflates faster than XB's as its 2-port fabric
    # saturates.
    cb_inflation = series["CB"][-1] / series["CB"][0]
    xb_inflation = series["XB"][-1] / series["XB"][0]
    assert cb_inflation > xb_inflation


@pytest.mark.parametrize("name", FIG7_CONFIGS)
def test_fig7d_broadcast_sweep(benchmark, name):
    sweep = benchmark.pedantic(
        broadcast_sweep, args=(name, FIG7_BROADCAST_RATES), rounds=1,
        iterations=1)
    assert all(p.avg_latency > 0 for p in sweep.points)


def test_fig7d_report(benchmark):
    def collect():
        return {name: broadcast_sweep(name,
                                      FIG7_BROADCAST_RATES).latencies
                for name in FIG7_CONFIGS}

    series = benchmark.pedantic(collect, rounds=1, iterations=1)
    print_series("Figure 7(d): latency, broadcast from (1,2)",
                 FIG7_BROADCAST_RATES, series, unit="cycles")
    # Under broadcast the CB router keeps pace with (or beats) XB: its
    # latency inflation from the lightest to the heaviest rate must not
    # exceed XB's.
    cb_inflation = series["CB"][-1] / series["CB"][0]
    xb_inflation = series["XB"][-1] / series["XB"][0]
    assert cb_inflation <= xb_inflation * 1.2
