"""Ablation: arbiter implementation choice.

The paper models three arbiter types (matrix, round-robin, queuing) and
observes that arbiter power is negligible (< 1% of node power).  This
bench quantifies the per-arbitration energy gap between the types across
requester counts and confirms that swapping the arbiter leaves total
network power essentially unchanged.
"""

import pytest

from repro import Orion, preset
from repro.core import events as ev
from repro.power import (
    MatrixArbiterPower,
    QueuingArbiterPower,
    RoundRobinArbiterPower,
)
from repro.tech import Technology

from conftest import SAMPLE, WARMUP

KINDS = {
    "matrix": MatrixArbiterPower,
    "round_robin": RoundRobinArbiterPower,
    "queuing": QueuingArbiterPower,
}


def test_arbiter_energy_by_type(benchmark):
    tech = Technology(0.1, vdd=1.2, frequency_hz=2e9)

    def table():
        return {
            (name, r): cls(tech, requesters=r).arbitration_energy(r)
            for name, cls in KINDS.items()
            for r in (2, 4, 8, 16, 32)
        }

    energies = benchmark(table)
    print("\n== Ablation: arbitration energy by type (pJ) ==")
    print(f"{'requesters':>10}" + "".join(f"{k:>14}" for k in KINDS))
    for r in (2, 4, 8, 16, 32):
        row = f"{r:>10}"
        for name in KINDS:
            row += f"{energies[(name, r)] * 1e12:>14.4f}"
        print(row)
    # Matrix state grows as R^2, round-robin as log R.
    assert energies[("matrix", 32)] > energies[("round_robin", 32)]


@pytest.mark.parametrize("arbiter_type", sorted(KINDS))
def test_network_power_insensitive_to_arbiter(benchmark, arbiter_type):
    """Figure 5(c)'s conclusion, as an end-to-end ablation: arbiter
    choice moves total network power by well under 1%."""
    cfg = preset("VC16").with_router(arbiter_type=arbiter_type)

    def run():
        return Orion(cfg).run_uniform(0.08, warmup_cycles=WARMUP,
                                      sample_packets=min(SAMPLE, 400))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    breakdown = result.power_breakdown_w()
    share = breakdown[ev.ARBITER] / sum(breakdown.values())
    print(f"\narbiter={arbiter_type}: total "
          f"{result.total_power_w:.3f} W, arbiter share {share:.4%}")
    assert share < 0.01
