"""Ablation: SRAM buffer geometry (the scaling behind Figure 5).

Sweeps the FIFO buffer power model over depth, width and port count,
printing the read/write energy surface — the quantities that separate
WH64 / VC16 / VC64 / VC128 in Figure 5(b) — and checks the model's
scaling laws.
"""

from repro.power import FIFOBufferPower
from repro.tech import Technology


def _tech():
    return Technology(0.1, vdd=1.2, frequency_hz=2e9)


def test_buffer_energy_vs_depth(benchmark):
    tech = _tech()
    depths = (4, 8, 16, 32, 64, 128, 256)

    def table():
        return {d: FIFOBufferPower(tech, depth_flits=d, flit_bits=256)
                for d in depths}

    models = benchmark(table)
    print("\n== Ablation: buffer energy vs depth (256-bit flits) ==")
    print(f"{'depth':>6} {'E_read pJ':>12} {'E_write pJ':>12}")
    for d, m in models.items():
        print(f"{d:>6} {m.read_energy() * 1e12:>12.2f} "
              f"{m.write_energy() * 1e12:>12.2f}")
    reads = [m.read_energy() for m in models.values()]
    assert reads == sorted(reads)
    # Quadrupling depth should not quadruple read energy (wordline and
    # per-bit fixed costs amortize).
    assert models[256].read_energy() < 4 * models[64].read_energy()


def test_buffer_energy_vs_width(benchmark):
    tech = _tech()
    widths = (16, 32, 64, 128, 256, 512)

    def table():
        return {w: FIFOBufferPower(tech, depth_flits=64, flit_bits=w)
                for w in widths}

    models = benchmark(table)
    print("\n== Ablation: buffer energy vs flit width (64 flits) ==")
    print(f"{'width':>6} {'E_read pJ':>12} {'E_write pJ':>12}")
    for w, m in models.items():
        print(f"{w:>6} {m.read_energy() * 1e12:>12.2f} "
              f"{m.write_energy() * 1e12:>12.2f}")
    # Read energy is near-linear in width (per-bit bitline columns).
    assert models[512].read_energy() > 10 * models[32].read_energy()


def test_buffer_energy_vs_ports(benchmark):
    tech = _tech()
    ports = (1, 2, 3, 4)

    def table():
        return {p: FIFOBufferPower(tech, depth_flits=64, flit_bits=256,
                                   read_ports=p, write_ports=p)
                for p in ports}

    models = benchmark(table)
    print("\n== Ablation: buffer energy vs port count (64 x 256) ==")
    print(f"{'r+w ports':>10} {'E_read pJ':>12} {'E_write pJ':>12} "
          f"{'area mm^2':>12}")
    from repro.power import area
    for p, m in models.items():
        print(f"{2 * p:>10} {m.read_energy() * 1e12:>12.2f} "
              f"{m.write_energy() * 1e12:>12.2f} "
              f"{area.buffer_area_um2(m) / 1e6:>12.4f}")
    reads = [m.read_energy() for m in models.values()]
    assert reads == sorted(reads)
