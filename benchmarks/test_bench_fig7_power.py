"""Figures 7(b) and 7(e): CB versus XB total network power on a
chip-to-chip 4x4 torus, under uniform random and broadcast traffic.

Paper shape: CB routers consume more power than XB routers at equal
load and equal area — the shared central buffer's full-row accesses
switch more capacitance than the XB's input buffers — while the 3 W
constant chip-to-chip links put a high traffic-independent floor under
both curves.
"""

import pytest

from conftest import (
    FIG7_BROADCAST_RATES,
    FIG7_CONFIGS,
    FIG7_UNIFORM_RATES,
    broadcast_sweep,
    print_series,
    uniform_sweep,
)

#: 64 links x 3 W: the traffic-invariant link floor.
LINK_FLOOR_W = 64 * 3.0


def test_fig7b_report(benchmark):
    def collect():
        return {name: uniform_sweep(name, FIG7_UNIFORM_RATES).powers
                for name in FIG7_CONFIGS}

    series = benchmark.pedantic(collect, rounds=1, iterations=1)
    print_series("Figure 7(b): total network power, uniform random",
                 FIG7_UNIFORM_RATES, series, unit="W")
    for i in range(len(FIG7_UNIFORM_RATES)):
        assert series["CB"][i] > series["XB"][i]
        # Both sit on the constant link floor.
        assert series["XB"][i] > LINK_FLOOR_W
    # Router (above-floor) power: CB well above XB at the top rate.
    cb_router = series["CB"][-1] - LINK_FLOOR_W
    xb_router = series["XB"][-1] - LINK_FLOOR_W
    assert cb_router > 1.5 * xb_router


def test_fig7e_report(benchmark):
    def collect():
        return {name: broadcast_sweep(name, FIG7_BROADCAST_RATES).powers
                for name in FIG7_CONFIGS}

    series = benchmark.pedantic(collect, rounds=1, iterations=1)
    print_series("Figure 7(e): total network power, broadcast",
                 FIG7_BROADCAST_RATES, series, unit="W")
    for i in range(len(FIG7_BROADCAST_RATES)):
        assert series["CB"][i] > series["XB"][i]
