"""Ablation: crossbar implementation choice (matrix vs multiplexer
tree).

The Appendix models both.  The matrix crossbar charges full crosspoint
rails per traversal; the mux tree charges a log-depth path.  Since the
crossbar is a dominant on-chip power consumer (Figure 5c), the choice
visibly moves total network power — this bench quantifies by how much.
"""

import pytest

from repro import Orion, preset
from repro.core import events as ev
from repro.power import MatrixCrossbarPower, MuxTreeCrossbarPower
from repro.tech import Technology

from conftest import SAMPLE, WARMUP


def test_crossbar_energy_scaling(benchmark):
    tech = Technology(0.1, vdd=1.2, frequency_hz=2e9)

    def table():
        out = {}
        for width in (32, 64, 128, 256, 512):
            mx = MatrixCrossbarPower(tech, 5, 5, width)
            mt = MuxTreeCrossbarPower(tech, 5, 5, width)
            out[width] = (mx.traversal_energy(), mt.traversal_energy())
        return out

    energies = benchmark(table)
    print("\n== Ablation: 5x5 crossbar traversal energy (pJ) ==")
    print(f"{'width':>6} {'matrix':>12} {'mux tree':>12} {'ratio':>8}")
    for width, (mx, mt) in energies.items():
        print(f"{width:>6} {mx * 1e12:>12.2f} {mt * 1e12:>12.2f} "
              f"{mx / mt:>8.2f}")
    assert all(mx > mt for mx, mt in energies.values())


def test_network_power_by_crossbar(benchmark):
    def run_both():
        results = {}
        for crossbar_type in ("matrix", "mux_tree"):
            cfg = preset("VC16").with_router(crossbar_type=crossbar_type)
            results[crossbar_type] = Orion(cfg).run_uniform(
                0.08, warmup_cycles=WARMUP,
                sample_packets=min(SAMPLE, 400))
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    shares = {}
    for crossbar_type, result in results.items():
        breakdown = result.power_breakdown_w()
        shares[crossbar_type] = (breakdown[ev.CROSSBAR]
                                 / sum(breakdown.values()))
        print(f"\ncrossbar={crossbar_type}: total "
              f"{result.total_power_w:.3f} W, crossbar share "
              f"{shares[crossbar_type]:.1%}")
    # Swapping the matrix fabric for a mux tree cuts both the crossbar
    # share and total network power — a sizeable end-to-end saving.
    assert shares["mux_tree"] < shares["matrix"]
    assert results["mux_tree"].total_power_w < \
        0.8 * results["matrix"].total_power_w
