"""Sharded fleet throughput: a 2-shard gateway vs one shard alone.

The gateway (``repro serve --shards N``) exists to scale the
simulation service horizontally: each shard is a full ``repro serve``
process with its own worker pool, and the consistent-hash ring sends
every job to exactly one of them.  Simulation jobs are CPU-bound, so
on a machine with spare cores a 2-shard fleet should approach 2x the
jobs/s of a single identically-configured shard; the ISSUE target is
**>= 1.5x**.

Both topologies run the same campaign — a batch of small ``run`` jobs
with distinct rates (distinct dedup keys, so nothing coalesces) —
submitted through the front door and timed from first submit to last
terminal status.  Jobs/s for both, the speedup, and the host's CPU
count land in ``BENCH_shard.json``, the artifact CI's shard-smoke job
gates on.

The local gate is CPU-aware: this container may expose a single CPU,
where two shards add process-switching overhead but no parallelism,
so the hard floor only demands the gateway not *lose* jobs or
collapse throughput; the 1.5x scaling claim is asserted when enough
cores exist to host it.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import preset
from repro.exp import config_to_dict
from repro.serve import ServeClient

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_shard.json"

#: A construction-light 4x4 grid so the campaign measures fleet
#: throughput, not one giant simulation.
SMALL_CONFIG = config_to_dict(preset("VC16").with_(width=4, height=4))
#: Heavy enough (~0.5s/job) that per-job wall time dwarfs the
#: client's poll quantisation and the gateway's routing hop.
PROTOCOL = {"warmup_cycles": 2000, "sample_packets": 800}
NUM_JOBS = 10

RESULTS = {}


def _payloads():
    return [{"kind": "run",
             "spec": {"config": SMALL_CONFIG, "traffic": "uniform",
                      "rate": 0.02 + 0.003 * i, "protocol": dict(PROTOCOL),
                      "label": f"bench{i}"}}
            for i in range(NUM_JOBS)]


BANNER_RE = re.compile(r"(?:serving|gateway) on http://[^\s:]+:(\d+)")


def _start(tmp_path, name, *args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep \
        + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "1",
         "--cache-dir", str(tmp_path / f"{name}-cache"),
         "--journal-dir", str(tmp_path / f"{name}-journal"),
         "--drain-timeout", "30", *args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=str(tmp_path))
    port = None
    deadline = time.monotonic() + 90
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        match = BANNER_RE.search(line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        process.kill()
        raise RuntimeError(f"{name} server never came up")
    return process, port


def _campaign(tmp_path, name, *args):
    """Jobs/s for one topology: submit NUM_JOBS distinct run jobs,
    wait for every terminal status, SIGTERM-drain the server."""
    process, port = _start(tmp_path, name, *args)
    try:
        client = ServeClient(f"http://127.0.0.1:{port}", timeout=60.0)
        start = time.perf_counter()
        accepted = [client.submit(payload) for payload in _payloads()]
        finals = [client.wait(entry["id"], timeout=600,
                              poll_interval=0.05)
                  for entry in accepted]
        elapsed = time.perf_counter() - start
        assert all(final["status"] == "done" for final in finals), finals
        return NUM_JOBS / elapsed
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.communicate(timeout=120)
        except subprocess.TimeoutExpired:
            process.kill()
            process.communicate()


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    if RESULTS:
        OUTPUT.write_text(json.dumps(RESULTS, indent=2, sort_keys=True)
                          + "\n")
        print(f"\n== wrote {OUTPUT.name}: "
              f"2 shards {RESULTS['sharded_jobs_per_sec']:.2f} jobs/s vs "
              f"1 shard {RESULTS['single_jobs_per_sec']:.2f} jobs/s "
              f"({RESULTS['shard_speedup']:.2f}x on "
              f"{RESULTS['cpu_count']} CPU(s)) ==")


def test_two_shards_outpace_one(tmp_path):
    single = _campaign(tmp_path, "single")
    sharded = _campaign(tmp_path, "sharded", "--shards", "2",
                        "--probe-interval", "0.5")
    cpu_count = os.cpu_count() or 1
    RESULTS.update({
        "benchmark": "shard",
        "unit": "jobs/s",
        "jobs": NUM_JOBS,
        "cpu_count": cpu_count,
        "single_jobs_per_sec": round(single, 3),
        "sharded_jobs_per_sec": round(sharded, 3),
        "shard_speedup": round(sharded / single, 3),
        "target_speedup": 1.5,
    })
    # CPU-aware gate: the scaling claim needs cores to scale onto.
    # Starved of cores, the fleet must still complete every job and
    # stay within routing-overhead distance of a single shard.
    floor = 1.5 if cpu_count >= 4 else 1.1 if cpu_count >= 2 else 0.5
    assert RESULTS["shard_speedup"] >= floor, RESULTS
