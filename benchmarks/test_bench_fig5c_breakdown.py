"""Figure 5(c): VC64 average power breakdown versus injection rate
(on-chip 4x4 torus, uniform random traffic).

Paper shape: input buffers and the crossbar consume more than 85% of
node power; arbiter power is invisible (< 1%); links take less than 15%.
"""

from repro.core import events as ev

from conftest import FIG5_RATES, uniform_sweep


def test_fig5c_report(benchmark):
    sweep = benchmark.pedantic(
        uniform_sweep, args=("VC64", FIG5_RATES), rounds=1, iterations=1)
    components = (ev.INPUT_BUFFER, ev.CROSSBAR, ev.ARBITER, ev.LINK)
    print("\n== Figure 5(c): VC64 power breakdown (W) ==")
    print(f"{'rate':>8}" + "".join(f"{c:>14}" for c in components))
    for point in sweep.points:
        row = f"{point.rate:>8.3f}"
        for component in components:
            row += f"{point.breakdown_w[component]:>14.3f}"
        print(row)
    for point in sweep.points:
        total = sum(point.breakdown_w.values())
        datapath = (point.breakdown_w[ev.INPUT_BUFFER]
                    + point.breakdown_w[ev.CROSSBAR])
        assert datapath / total > 0.85, point.rate
        assert point.breakdown_w[ev.ARBITER] / total < 0.01, point.rate
        assert point.breakdown_w[ev.LINK] / total < 0.15, point.rate
